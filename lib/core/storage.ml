open Numtheory

type hint = {
  hint_target : Net.Node_id.t;
  hint_glsn : Glsn.t;
  hint_blob : string;
  hint_digest : Bignum.t;
  hint_witness : Bignum.t;
  hint_ticket : string;
}

type t = {
  node : Net.Node_id.t;
  supported : Attribute.Set.t;
  mutable rows : (Attribute.t * Value.t) list Glsn.Map.t;
  mutable digests : Bignum.t Glsn.Map.t;
  mutable witnesses : Bignum.t Glsn.Map.t;
  mutable replicas : (string * string) list Glsn.Map.t;
      (* glsn -> (owner name, encrypted blob) *)
  mutable hints : hint list;  (* newest first *)
  acl : Access_control.t;
}

let create ~node ~supported =
  {
    node;
    supported;
    rows = Glsn.Map.empty;
    digests = Glsn.Map.empty;
    witnesses = Glsn.Map.empty;
    replicas = Glsn.Map.empty;
    hints = [];
    acl = Access_control.create ();
  }

let node t = t.node
let supported t = t.supported

let store t ~glsn ~fragment =
  List.iter
    (fun (attr, _) ->
      if not (Attribute.Set.mem attr t.supported) then
        invalid_arg "Storage.store: unsupported attribute in fragment")
    fragment;
  if Glsn.Map.mem glsn t.rows then
    invalid_arg "Storage.store: glsn already stored";
  t.rows <- Glsn.Map.add glsn fragment t.rows

let store_digest t ~glsn digest =
  t.digests <- Glsn.Map.add glsn digest t.digests

let store_witness t ~glsn witness =
  t.witnesses <- Glsn.Map.add glsn witness t.witnesses

let remove t ~glsn =
  let present = Glsn.Map.mem glsn t.rows || Glsn.Map.mem glsn t.digests in
  t.rows <- Glsn.Map.remove glsn t.rows;
  t.digests <- Glsn.Map.remove glsn t.digests;
  t.witnesses <- Glsn.Map.remove glsn t.witnesses;
  present

let fragment_of t glsn = Glsn.Map.find_opt glsn t.rows
let digest_of t glsn = Glsn.Map.find_opt glsn t.digests
let witness_of t glsn = Glsn.Map.find_opt glsn t.witnesses
let glsns t = List.map fst (Glsn.Map.bindings t.rows)
let record_count t = Glsn.Map.cardinal t.rows

let column t attr =
  Glsn.Map.fold
    (fun glsn fragment acc ->
      match List.assoc_opt attr fragment with
      | Some v -> (glsn, v) :: acc
      | None -> acc)
    t.rows []
  |> List.rev

let acl t = t.acl

let store_replica t ~owner ~glsn ~blob =
  let owner = Net.Node_id.to_string owner in
  let existing = Option.value ~default:[] (Glsn.Map.find_opt glsn t.replicas) in
  let existing = List.remove_assoc owner existing in
  t.replicas <- Glsn.Map.add glsn ((owner, blob) :: existing) t.replicas

let replica_of t ~owner glsn =
  match Glsn.Map.find_opt glsn t.replicas with
  | None -> None
  | Some blobs -> List.assoc_opt (Net.Node_id.to_string owner) blobs

let replica_count t =
  Glsn.Map.fold (fun _ blobs acc -> acc + List.length blobs) t.replicas 0

let park_hint t hint = t.hints <- hint :: t.hints

let hints t = List.rev t.hints

let hint_count t = List.length t.hints

let take_hints_for t ~target =
  let mine, rest =
    List.partition (fun h -> Net.Node_id.equal h.hint_target target) t.hints
  in
  t.hints <- rest;
  List.rev mine

let drop_hints t ~glsn =
  t.hints <- List.filter (fun h -> not (Glsn.equal h.hint_glsn glsn)) t.hints

let tamper_set t ~glsn ~attr value =
  match Glsn.Map.find_opt glsn t.rows with
  | None -> false
  | Some fragment ->
    let replaced = ref false in
    let fragment' =
      List.map
        (fun (a, v) ->
          if Attribute.equal a attr then begin
            replaced := true;
            (a, value)
          end
          else (a, v))
        fragment
    in
    let fragment' =
      if !replaced then fragment' else (attr, value) :: fragment'
    in
    t.rows <- Glsn.Map.add glsn fragment' t.rows;
    true

let tamper_delete t ~glsn =
  if Glsn.Map.mem glsn t.rows then begin
    t.rows <- Glsn.Map.remove glsn t.rows;
    true
  end
  else false
