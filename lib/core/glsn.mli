(** Global log sequence numbers (paper §2, eq 5; §4: "the glsn is
    uniquely assigned by DLA cluster").

    A glsn is a monotonically increasing integer rendered in the paper's
    hex style (139aef78, 139aef79, …).  The allocator models the
    cluster-wide assignment service. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Lowercase hex, as in Table 1. *)

val of_string : string -> t
(** @raise Invalid_argument on non-hex input. *)

val to_int : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** The cluster-wide allocation service. *)
module Allocator : sig
  type glsn := t
  type t

  val create : ?start:int -> unit -> t
  (** Default start matches the paper's Table 1 (0x139aef78). *)

  val next : t -> glsn
  (** Strictly monotonic. *)

  val issued : t -> int
  (** How many glsn's have been allocated. *)
end
