type member = {
  identity : string;
  pseudonym : string;
  mutable has_invite_authority : bool;
}

type enrolled = {
  member : member;
  token : Evidence.token;
  secrets : Evidence.secrets;
  node : Net.Node_id.t;
}

type t = {
  net : Net.Network.t;
  authority : Evidence.Authority.t;
  mutable enrolled : enrolled list;  (* join order *)
  mutable chain : Evidence.piece list;  (* oldest first *)
}

let enroll t identity =
  let token, secrets = Evidence.Authority.issue t.authority ~identity in
  let node = Net.Node_id.Dla (List.length t.enrolled) in
  (* Credential request/response with the authority. *)
  Net.Network.send_exn t.net ~src:node ~dst:Net.Node_id.Authority
    ~label:"membership:enroll" ~bytes:(String.length identity);
  Net.Network.send_exn t.net ~src:Net.Node_id.Authority ~dst:node
    ~label:"membership:token" ~bytes:(64 * Evidence.pair_count);
  Net.Network.round t.net;
  let entry =
    {
      member =
        {
          identity;
          pseudonym = token.Evidence.pseudonym;
          has_invite_authority = false;
        };
      token;
      secrets;
      node;
    }
  in
  t.enrolled <- t.enrolled @ [ entry ];
  entry

let found ~net ~authority_seed ~identity =
  let t =
    { net; authority = Evidence.Authority.create ~seed:authority_seed;
      enrolled = []; chain = [] }
  in
  let founder = enroll t identity in
  founder.member.has_invite_authority <- true;
  t

let authority t = t.authority
let members t = List.map (fun e -> e.member) t.enrolled
let chain t = t.chain

let enrolled_by_pseudonym t pseudonym =
  List.find_opt (fun e -> String.equal e.member.pseudonym pseudonym) t.enrolled

let member_by_pseudonym t pseudonym =
  Option.map (fun e -> e.member) (enrolled_by_pseudonym t pseudonym)

let run_handshake t inviter_entry ~invitee_identity ~pp ~sc =
  (* The invitee enrolls with the CA first (it needs a pseudonym for the
     handshake), then PP/SC/RE runs between the two pseudonymous nodes. *)
  let invitee_entry = enroll t invitee_identity in
  let src = inviter_entry.node and dst = invitee_entry.node in
  Net.Network.send_exn t.net ~src ~dst ~label:"membership:pp"
    ~bytes:(String.length pp);
  Net.Network.round t.net;
  Net.Network.send_exn t.net ~src:dst ~dst:src ~label:"membership:sc"
    ~bytes:(String.length sc);
  Net.Network.round t.net;
  let piece =
    Evidence.make_piece ~inviter_token:inviter_entry.token
      ~inviter_secrets:inviter_entry.secrets
      ~invitee:invitee_entry.member.pseudonym ~pp ~sc
  in
  Net.Network.send_exn t.net ~src ~dst ~label:"membership:re"
    ~bytes:(32 * Evidence.pair_count);
  Net.Network.round t.net;
  t.chain <- t.chain @ [ piece ];
  (* Authority passes along: the invitee may now invite, the inviter is
     spent. *)
  inviter_entry.member.has_invite_authority <- false;
  invitee_entry.member.has_invite_authority <- true;
  invitee_entry.member

let invite t ~inviter ~invitee_identity ~pp ~sc =
  match enrolled_by_pseudonym t inviter with
  | None -> Error "unknown inviter pseudonym"
  | Some entry ->
    if not entry.member.has_invite_authority then
      Error "invitation authority already spent"
    else Ok (run_handshake t entry ~invitee_identity ~pp ~sc)

let rogue_invite t ~inviter ~invitee_identity ~pp ~sc =
  match enrolled_by_pseudonym t inviter with
  | None -> Error "unknown inviter pseudonym"
  | Some entry -> Ok (run_handshake t entry ~invitee_identity ~pp ~sc)

let verify_chain t =
  let founder_pseudonym =
    match t.enrolled with
    | [] -> ""
    | founder :: _ -> founder.member.pseudonym
  in
  let rec go admitted = function
    | [] -> Ok ()
    | piece :: rest -> (
      match Evidence.verify_piece t.authority piece with
      | Error e -> Error e
      | Ok () ->
        if not (List.mem piece.Evidence.inviter admitted) then
          Error
            (Printf.sprintf "inviter %s was not an admitted member"
               piece.Evidence.inviter)
        else go (piece.Evidence.invitee :: admitted) rest)
  in
  go [ founder_pseudonym ] t.chain

let detect_cheaters t =
  (* Any two chain pieces by the same inviter expose it. *)
  let rec pairs acc = function
    | [] -> List.rev acc
    | piece :: rest ->
      let dups =
        List.filter
          (fun other ->
            String.equal other.Evidence.inviter piece.Evidence.inviter)
          rest
      in
      let exposed =
        List.filter_map
          (fun other ->
            match Evidence.recover_identity_block piece other with
            | None -> None
            | Some block -> (
              match Evidence.Authority.identity_of_block t.authority block with
              | Some identity -> Some (piece.Evidence.inviter, identity)
              | None -> None))
          dups
      in
      pairs (exposed @ acc) rest
  in
  List.sort_uniq compare (pairs [] t.chain)
