(** Query planning (paper §2, Figure 3).

    Classifies each atom of a normalized query as *local* (both operands
    live at one DLA node) or *cross* (operands homed at two nodes), and
    assigns each clause SQ_i a home node that will assemble the clause's
    glsn set.  The planner only needs the fragmentation map — never the
    data. *)

type atom_home =
  | Local of Net.Node_id.t
  | Cross of { left : Net.Node_id.t; right : Net.Node_id.t }

type planned_atom = { atom : Query.atom; home : atom_home }

type planned_clause = {
  atoms : planned_atom list;
  clause_home : Net.Node_id.t;  (** node that assembles this SQ_i *)
  is_cross : bool;  (** does the clause involve more than one node? *)
}

type t = {
  clauses : planned_clause list;
  total_atoms : int;  (** s of eq 11 *)
  cross_atoms : int;  (** t of eq 11 *)
  conjuncts : int;  (** q of eq 11 *)
}

val plan : Fragmentation.t -> Query.normalized -> (t, string) result
(** Fails when a referenced attribute has no home in the cluster. *)

val homes : t -> Net.Node_id.t list
(** Distinct clause homes, in first-appearance order. *)
