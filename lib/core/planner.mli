(** Query planning (paper §2, Figure 3).

    Classifies each atom of a normalized query as *local* (both operands
    live at one DLA node) or *cross* (operands homed at two nodes), and
    assigns each clause SQ_i a home node that will assemble the clause's
    glsn set.  The planner only needs the fragmentation map — never the
    data.

    For batched sessions, {!plan_many} plans several queries jointly and
    reports how much of the work is shared: atoms and clauses are keyed
    by a canonical byte form ({!atom_key}/{!clause_key}), so identical
    predicates appearing in different queries are recognized as one unit
    of SMC work. *)

type atom_home =
  | Local of Net.Node_id.t
  | Cross of { left : Net.Node_id.t; right : Net.Node_id.t }

type planned_atom = { atom : Query.atom; home : atom_home }

type planned_clause = {
  atoms : planned_atom list;
  clause_home : Net.Node_id.t;  (** node that assembles this SQ_i *)
  is_cross : bool;  (** does the clause involve more than one node? *)
}

type t = {
  clauses : planned_clause list;
  total_atoms : int;  (** s of eq 11 *)
  cross_atoms : int;  (** t of eq 11 *)
  conjuncts : int;  (** q of eq 11 *)
}

val plan : Fragmentation.t -> Query.normalized -> (t, Audit_error.t) result
(** Fails with {!Audit_error.Unknown_attribute} when a referenced
    attribute has no home in the cluster. *)

val homes : t -> Net.Node_id.t list
(** Distinct clause homes in canonical ({!Net.Node_id.compare}) order —
    independent of clause order, so logically equal plans report equal
    home sets. *)

(** {1 Canonical predicate keys}

    Injective byte encodings used to recognize shared work: equal keys
    iff the predicates are structurally identical (same attribute,
    operator and right-hand side; clause keys are additionally
    order-insensitive over their atoms, since a clause is a
    disjunction). *)

val atom_key : Query.atom -> string
val clause_key : Query.clause -> string

val clause_resources : planned_clause -> Net.Node_id.t list
(** The storage nodes one clause evaluation occupies — its assembly
    home plus every atom's fragment home(s), in canonical order.  Two
    clauses with disjoint resource sets are independent SMC work and
    may overlap in the reactor; TTP comparison services are stateless
    per atom and deliberately excluded. *)

(** {1 Multi-query planning} *)

type multi = {
  plans : t list;  (** one plan per input query, in input order *)
  unique_atoms : int;  (** distinct atoms across the whole batch *)
  unique_clauses : int;  (** distinct clauses across the whole batch *)
  dedup_atoms : int;
      (** atom occurrences eliminated by sharing: total - unique *)
  dedup_clauses : int;  (** clause occurrences eliminated by sharing *)
}

val plan_many :
  Fragmentation.t -> Query.normalized list -> (multi, Audit_error.t) result
(** Plan a batch jointly.  Fails on the first unknown attribute, like
    {!plan} on each query in order. *)

val dependency_graph : multi -> (string * string list) list
(** Per-clause dependency graph over the batch's distinct clauses, in
    first-appearance order (the order a session warms them): each
    entry is [(clause_key, keys of earlier distinct clauses whose
    {!clause_resources} intersect this one's)].  Clauses absent from
    each other's lists may pipeline; the reactor enforces the same
    edges through resource ready-times. *)

(** {1 Sharded planning}

    A sharded deployment splits the global log by glsn range across
    several DLA clusters.  {!plan_sharded} plans a batch against every
    shard's fragmentation map and assigns each distinct clause a *shard
    home* — the shard responsible for assembling that clause's
    cross-shard union during the gather phase.  The assignment hashes
    the canonical {!clause_key} over the normalized layout, so it is a
    pure function of clause structure and layout: permuting the queries
    or rotating the shard list cannot move a clause's home. *)

type shard_range = {
  shard : string;  (** shard name, unique within a layout *)
  glsn_lo : int;  (** first glsn owned by the shard (inclusive) *)
  glsn_hi : int;  (** first glsn past the shard (exclusive) *)
}

val validate_layout :
  shard_range list -> (shard_range list, Audit_error.t) result
(** Normalize a layout to canonical ascending order.  Fails with
    {!Audit_error.Shard_layout} when the ranges do not partition a
    contiguous glsn interval: empty layout, empty range, duplicate
    name, overlap, or gap. *)

val owner_of_glsn : shard_range list -> int -> shard_range option
(** Owning range for a glsn, if any; expects a validated layout. *)

val shard_home : shard_range list -> string -> string
(** Shard name that assembles the clause with the given
    {!clause_key}, over a validated (canonically ordered) layout. *)

type sharded = {
  layout : shard_range list;  (** validated, canonical ascending order *)
  shard_multis : (shard_range * multi) list;
      (** one joint batch plan per shard, in layout order *)
  clause_shard_homes : (string * string) list;
      (** [clause_key → shard name] for every distinct clause in the
          batch, sorted by key *)
}

val plan_sharded :
  shards:(shard_range * Fragmentation.t) list ->
  Query.normalized list ->
  (sharded, Audit_error.t) result
(** Validate the layout, plan the batch against every shard, and assign
    clause shard homes.  Fails like {!validate_layout} on a bad layout
    and like {!plan_many} on an unknown attribute. *)
