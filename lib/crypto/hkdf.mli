(** HKDF (RFC 5869) over HMAC-SHA256.

    The key-derivation step wherever one secret must yield several
    independent keys — the replication layer derives each owner's blob
    key and MAC key from one master secret.  Validated against the RFC
    5869 test vectors. *)

val extract : ?salt:string -> ikm:string -> unit -> string
(** 32-byte pseudorandom key.  [salt] defaults to 32 zero bytes. *)

val expand : prk:string -> info:string -> length:int -> string
(** Output keying material.
    @raise Invalid_argument if [length] exceeds 255×32 or is negative. *)

val derive : ikm:string -> info:string -> length:int -> string
(** [expand (extract ikm)] in one call, with the default (zero) salt;
    use {!extract} + {!expand} when a salt is needed. *)
