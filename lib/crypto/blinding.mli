(** Value blinding for TTP-assisted comparisons (paper §3.2, §3.3).

    Two flavours, matching the two uses in the paper:

    - {b Equality blinding} (§3.2): parties agree on a secret random
      affine map [y ↦ (a*y + b) mod p] with [a ≠ 0].  The map is a
      bijection on Z_p, so a blind TTP can compare transformed values for
      equality without learning the originals.

    - {b Order blinding} (§3.3): parties agree on a secret strictly
      increasing map [y ↦ scale*y + offset] over the integers.  A blind
      TTP can then compute max / min / ranks of the transformed values;
      order is preserved, magnitudes are hidden up to the (secret) scale
      — the "secondary information" disclosure Definition 1 permits. *)

open Numtheory

type affine = private { a : Bignum.t; b : Bignum.t; p : Bignum.t }

val generate_affine : Numtheory.Prng.t -> p:Bignum.t -> affine
(** Random [a ∈ \[1, p)], [b ∈ \[0, p)]. *)

val apply_affine : affine -> Bignum.t -> Bignum.t

val apply_affine_many : affine -> Bignum.t list -> Bignum.t list
(** Blind a whole list under one map; results and counter totals are
    identical to mapping {!apply_affine}. *)

type monotone = private { scale : Bignum.t; offset : Bignum.t }

val generate_monotone : Numtheory.Prng.t -> bits:int -> monotone
(** Random positive [scale] and [offset] of roughly [bits] bits. *)

val apply_monotone : monotone -> Bignum.t -> Bignum.t

val apply_monotone_many : monotone -> Bignum.t list -> Bignum.t list
(** Blind a whole list under one map; results and counter totals are
    identical to mapping {!apply_monotone}. *)
