type t = string

type opening = { value : string; nonce : string }

let hash ~nonce value = Sha256.digest (nonce ^ "\x01" ^ value)

let commit rng value =
  let nonce = Numtheory.Prng.bytes rng 32 in
  (hash ~nonce value, { value; nonce })

let verify t { value; nonce } = String.equal t (hash ~nonce value)

let equal = String.equal
let to_hex = Sha256.to_hex
let pp fmt t = Format.pp_print_string fmt (to_hex t)
