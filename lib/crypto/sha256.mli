(** SHA-256 (FIPS 180-4), pure OCaml.

    Every hash-shaped need in the system routes through here: mapping log
    elements into the Pohlig–Hellman group, one-way-accumulator exponent
    derivation, ticket MACs (via {!hmac}) and evidence commitments.
    Validated against the FIPS test vectors in the test suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val digest_hex : string -> string
(** One-shot digest as 64 lowercase hex characters. *)

val hmac : key:string -> string -> string
(** HMAC-SHA256 (RFC 2104), 32-byte raw MAC. *)

val hmac_hex : key:string -> string -> string

val to_hex : string -> string
(** Hex-encode an arbitrary byte string (used for digests). *)
