(** Pohlig–Hellman exponentiation cipher (paper §3, ref [21]).

    Over a safe prime [p], encryption is [c = m^e mod p] and decryption
    [m = c^d mod p] with [e*d = 1 mod (p-1)].  Because exponents compose
    multiplicatively, encryptions under different keys commute —
    equations (6) and (7) of the paper — which is what lets DLA nodes
    relay and stack encryptions in any order during secure set
    intersection and union. *)

open Numtheory

type params = private { p : Bignum.t; span : Bignum.t }
(** The shared group: a prime [p] such that [p-1] has a large prime
    factor (we generate safe primes, [p = 2q+1]).  [span = p - 3] is
    precomputed for {!encode} so the hot encoding loop allocates no
    per-call constants. *)

type key = private { e : Bignum.t; d : Bignum.t }

val generate_params : Numtheory.Prng.t -> bits:int -> params
(** Fresh safe-prime parameters.  All cluster members share [params]. *)

val params_of_prime : Bignum.t -> params
(** Wrap an externally agreed prime.
    @raise Invalid_argument if the argument is even or < 5. *)

val generate_key : Numtheory.Prng.t -> params -> key
(** Random [e] coprime to [p-1], with matching [d]. *)

val encrypt : params -> key -> Bignum.t -> Bignum.t
(** @raise Invalid_argument if the message is outside [\[1, p-1\]]. *)

val decrypt : params -> key -> Bignum.t -> Bignum.t

val encrypt_many : params -> key -> Bignum.t list -> Bignum.t list
(** Batch encryption under one key: the exponent windows are recoded
    once and the Montgomery scratch state shared across the list
    ({!Numtheory.Modular.pow_many}).  Ciphertexts are identical to
    mapping {!encrypt}; [crypto.modexp] is incremented by the batch
    length, so §3 cost counts are unchanged.
    @raise Invalid_argument if any message is outside [\[1, p-1\]]. *)

val decrypt_many : params -> key -> Bignum.t list -> Bignum.t list
(** Batch counterpart of {!decrypt}; same guarantees as
    {!encrypt_many}. *)

type resident
(** A ciphertext held in Montgomery-resident form alongside its
    canonical wire value.  The wire value is byte-identical to what the
    scalar path produces at every hop; the residue lets chained
    re-encryptions skip the per-op domain entry/exit
    ({!Numtheory.Montgomery.pow_with_resident}). *)

val enter_many : params -> Bignum.t list -> resident list
(** Convert a batch into the residue domain once (counter
    [crypto.mont.resident_enter]).  For moduli outside the Montgomery
    shape the residents degrade to plain wrappers and every later
    operation uses the ordinary batch path. *)

val view : resident -> Bignum.t
(** The canonical wire value — always current, in [\[0, p)]. *)

val resync : params -> resident -> Bignum.t -> resident
(** [resync params r wire] reconciles a resident with the value that
    actually arrived: equal views keep the chained residue free of
    charge; a tampered delivery re-enters the domain from [wire]
    (counter [crypto.mont.resident_resync]). *)

val encrypt_resident_many : params -> key -> resident list -> resident list
(** In-domain batch encryption: value- and counter-equivalent to
    {!encrypt_many} ([crypto.modexp] advances by the batch length), but
    each element pays one REDC multiplication to refresh its wire view
    instead of a full domain round-trip.
    @raise Invalid_argument if any view is outside [\[1, p-1]\]. *)

val decrypt_resident_many : params -> key -> resident list -> resident list
(** In-domain counterpart of {!decrypt_many}. *)

val encode : params -> string -> Bignum.t
(** Deterministic hash-embedding of an arbitrary byte string into
    [\[2, p-2\]]: equal strings map to equal group elements, so
    commutatively-encrypted equality comparisons work on any payload. *)
