open Numtheory

type params = { n : Bignum.t; x0 : Bignum.t }

let generate rng ~bits =
  let n, _p, _q = Primes.rsa_modulus rng ~bits in
  let x0 = Prng.bignum_range rng Bignum.two (Bignum.pred n) in
  { n; x0 }

let of_values ~n ~x0 =
  if Bignum.compare n (Bignum.of_int 4) <= 0 then
    invalid_arg "Accumulator.of_values: modulus too small"
  else if Bignum.compare x0 Bignum.one <= 0 || Bignum.compare x0 n >= 0 then
    invalid_arg "Accumulator.of_values: x0 outside (1, n)"
  else { n; x0 }

let exponent_of_bytes payload =
  Bignum.logor (Bignum.of_bytes_be (Sha256.digest payload)) Bignum.one

let accumulate { n; _ } acc ~y =
  if Bignum.sign y <= 0 then invalid_arg "Accumulator.accumulate: y <= 0"
  else Modular.pow acc y ~m:n (* generic-path: the base varies per call *)

let accumulate_bytes params acc payload =
  accumulate params acc ~y:(exponent_of_bytes payload)

(* Quasi-commutativity (eq 9) collapses any fold from [x0] into a
   single power of the long-lived seed: [x0^(Π yᵢ)].  Routing that
   through the fixed-base window table makes every [x0]-rooted
   computation squaring-free once the table is warm. *)
let product_exponent payloads =
  List.fold_left
    (fun acc payload -> Bignum.mul acc (exponent_of_bytes payload))
    Bignum.one payloads

let accumulate_all params payloads =
  Modular.pow_base ~base:params.x0 (product_exponent payloads) ~m:params.n

let witnesses params payloads =
  (* Prefix/suffix exponent products give every witness
     [x0^(Π_{j≠i} yⱼ)] in O(n) bignum multiplications plus n
     fixed-base exponentiations — the old quadratic refold of the
     other n-1 elements per witness is gone, values unchanged. *)
  let ys = Array.of_list (List.map exponent_of_bytes payloads) in
  let n = Array.length ys in
  let prefix = Array.make (n + 1) Bignum.one in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- Bignum.mul prefix.(i) ys.(i)
  done;
  let suffix = Array.make (n + 1) Bignum.one in
  for i = n - 1 downto 0 do
    suffix.(i) <- Bignum.mul suffix.(i + 1) ys.(i)
  done;
  List.mapi
    (fun i payload ->
      ( payload,
        Modular.pow_base ~base:params.x0
          (Bignum.mul prefix.(i) suffix.(i + 1))
          ~m:params.n ))
    payloads

let summarize params digests =
  accumulate_all params (List.map Bignum.to_string digests)

let verify_membership params ~total ~witness payload =
  Bignum.equal (accumulate_bytes params witness payload) total

let verify_members rng params ~total pairs =
  (* Probabilistic batch check via one Shamir multi-exponentiation:
     draw a small random rᵢ per pair; then Π wᵢ^(yᵢ·rᵢ) = total^(Σ rᵢ)
     holds iff every wᵢ^yᵢ = total, except with probability ~2⁻³⁰ over
     the rᵢ.  |pairs| full-width exponentiations become one multi_pow
     plus one short power of [total]. *)
  match pairs with
  | [] -> true
  | _ ->
    let terms =
      List.map
        (fun (payload, witness) ->
          let r = Bignum.succ (Prng.bits rng 30) in
          (witness, Bignum.mul (exponent_of_bytes payload) r, r))
        pairs
    in
    let lhs =
      Modular.multi_pow
        (List.map (fun (w, e, _) -> (w, e)) terms)
        ~m:params.n
    in
    let r_sum =
      List.fold_left (fun acc (_, _, r) -> Bignum.add acc r) Bignum.zero terms
    in
    Bignum.equal lhs
      (Modular.pow total r_sum ~m:params.n (* generic-path: per-set total *))

let add params ~total payload = accumulate_bytes params total payload

let update_witness params ~witness ~added =
  accumulate_bytes params witness added

let update_witness_many params ~witness ~added =
  (* One exponentiation keeps a witness valid across a whole batch of
     insertions: w^(Π yᵢ). *)
  match added with
  | [] -> witness
  | _ ->
    Modular.pow witness (product_exponent added)
      ~m:params.n (* generic-path: witness base is per-holder *)
