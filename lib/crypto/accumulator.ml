open Numtheory

type params = { n : Bignum.t; x0 : Bignum.t }

let generate rng ~bits =
  let n, _p, _q = Primes.rsa_modulus rng ~bits in
  let x0 = Prng.bignum_range rng Bignum.two (Bignum.pred n) in
  { n; x0 }

let of_values ~n ~x0 =
  if Bignum.compare n (Bignum.of_int 4) <= 0 then
    invalid_arg "Accumulator.of_values: modulus too small"
  else if Bignum.compare x0 Bignum.one <= 0 || Bignum.compare x0 n >= 0 then
    invalid_arg "Accumulator.of_values: x0 outside (1, n)"
  else { n; x0 }

let exponent_of_bytes payload =
  Bignum.logor (Bignum.of_bytes_be (Sha256.digest payload)) Bignum.one

let accumulate { n; _ } acc ~y =
  if Bignum.sign y <= 0 then invalid_arg "Accumulator.accumulate: y <= 0"
  else Modular.pow acc y ~m:n

let accumulate_bytes params acc payload =
  accumulate params acc ~y:(exponent_of_bytes payload)

let accumulate_all params payloads =
  List.fold_left (accumulate_bytes params) params.x0 payloads

let witnesses params payloads =
  (* Quadratic fold is fine at cluster sizes; a product tree would give
     O(n log n) but obscure the algebra. *)
  List.mapi
    (fun i payload ->
      let others = List.filteri (fun j _ -> j <> i) payloads in
      (payload, accumulate_all params others))
    payloads

let summarize params digests =
  accumulate_all params (List.map Bignum.to_string digests)

let verify_membership params ~total ~witness payload =
  Bignum.equal (accumulate_bytes params witness payload) total

let add params ~total payload = accumulate_bytes params total payload

let update_witness params ~witness ~added =
  accumulate_bytes params witness added
