open Numtheory

(* A ciphertext as threaded through a ring pass: Pohlig–Hellman values
   ride in Montgomery-resident form (entered once per protocol run),
   anything else as the bare wire value.  Either way [view] is the
   canonical bignum that goes on the network — byte-identical to the
   scalar path. *)
type resident =
  | Ph of Pohlig_hellman.params * Pohlig_hellman.resident
  | Raw of Bignum.t

type keypair = {
  enc : Bignum.t -> Bignum.t;
  dec : Bignum.t -> Bignum.t;
  enc_many : Bignum.t list -> Bignum.t list;
  dec_many : Bignum.t list -> Bignum.t list;
  enc_res_many : resident list -> resident list;
  dec_res_many : resident list -> resident list;
}

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
  encode : string -> Bignum.t;
  enter_many : Bignum.t list -> resident list;
  view : resident -> Bignum.t;
  resync : resident -> Bignum.t -> resident;
}

let view = function
  | Ph (_, r) -> Pohlig_hellman.view r
  | Raw v -> v

let resync r wire =
  match r with
  | Ph (params, r) -> Ph (params, Pohlig_hellman.resync params r wire)
  | Raw _ -> Raw wire

(* Every keypair counts its layer operations scheme-agnostically, so
   the §3 set-protocol cost formulas (n²·m encryptions for ∩ₛ, plus
   n·u decryptions for ∪ₛ) are assertable whatever cipher backs the
   run.  Batch and resident calls count one operation per element, so
   the counters are invariant under both batching and residency. *)
let counted { enc; dec; enc_many; dec_many; enc_res_many; dec_res_many } =
  {
    enc =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.enc";
        enc x);
    dec =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.dec";
        dec x);
    enc_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.enc";
        enc_many xs);
    dec_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.dec";
        dec_many xs);
    enc_res_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.enc";
        enc_res_many xs);
    dec_res_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.dec";
        dec_res_many xs);
  }

let pohlig_hellman rng params =
  (* Residents from a foreign scheme (a [Raw] handed to a PH keypair)
     cannot arise from the protocol code, but re-entering them keeps
     the operations total. *)
  let to_ph = function
    | Ph (_, r) -> r
    | Raw v -> List.hd (Pohlig_hellman.enter_many params [ v ])
  in
  let lift op key rs =
    List.map
      (fun r -> Ph (params, r))
      (op params key (List.map to_ph rs))
  in
  {
    name = "pohlig-hellman";
    fresh_keypair =
      (fun () ->
        let key = Pohlig_hellman.generate_key rng params in
        counted
          {
            enc = Pohlig_hellman.encrypt params key;
            dec = Pohlig_hellman.decrypt params key;
            enc_many = Pohlig_hellman.encrypt_many params key;
            dec_many = Pohlig_hellman.decrypt_many params key;
            enc_res_many = lift Pohlig_hellman.encrypt_resident_many key;
            dec_res_many = lift Pohlig_hellman.decrypt_resident_many key;
          });
    encode = Pohlig_hellman.encode params;
    enter_many =
      (fun ms ->
        List.map
          (fun r -> Ph (params, r))
          (Pohlig_hellman.enter_many params ms));
    view;
    resync;
  }

let xor_pad rng params =
  {
    name = "xor-pad";
    fresh_keypair =
      (fun () ->
        let key = Xor_pad.generate_key rng params in
        let enc = Xor_pad.encrypt params key in
        let dec = Xor_pad.decrypt params key in
        (* No useful residue form for the pad: residents are bare wire
           values and the resident batch is the plain map. *)
        let lift op rs = List.map (fun r -> Raw (op (view r))) rs in
        counted
          {
            enc;
            dec;
            enc_many = List.map enc;
            dec_many = List.map dec;
            enc_res_many = lift enc;
            dec_res_many = lift dec;
          });
    encode = Xor_pad.encode params;
    enter_many = (fun ms -> List.map (fun m -> Raw m) ms);
    view;
    resync;
  }
