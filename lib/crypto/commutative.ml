open Numtheory

type keypair = { enc : Bignum.t -> Bignum.t; dec : Bignum.t -> Bignum.t }

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
  encode : string -> Bignum.t;
}

let pohlig_hellman rng params =
  {
    name = "pohlig-hellman";
    fresh_keypair =
      (fun () ->
        let key = Pohlig_hellman.generate_key rng params in
        {
          enc = Pohlig_hellman.encrypt params key;
          dec = Pohlig_hellman.decrypt params key;
        });
    encode = Pohlig_hellman.encode params;
  }

let xor_pad rng params =
  {
    name = "xor-pad";
    fresh_keypair =
      (fun () ->
        let key = Xor_pad.generate_key rng params in
        { enc = Xor_pad.encrypt params key; dec = Xor_pad.decrypt params key });
    encode = Xor_pad.encode params;
  }
