open Numtheory

type keypair = { enc : Bignum.t -> Bignum.t; dec : Bignum.t -> Bignum.t }

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
  encode : string -> Bignum.t;
}

(* Every keypair counts its layer operations scheme-agnostically, so
   the §3 set-protocol cost formulas (n²·m encryptions for ∩ₛ, plus
   n·u decryptions for ∪ₛ) are assertable whatever cipher backs the
   run. *)
let counted { enc; dec } =
  {
    enc =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.enc";
        enc x);
    dec =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.dec";
        dec x);
  }

let pohlig_hellman rng params =
  {
    name = "pohlig-hellman";
    fresh_keypair =
      (fun () ->
        let key = Pohlig_hellman.generate_key rng params in
        counted
          {
            enc = Pohlig_hellman.encrypt params key;
            dec = Pohlig_hellman.decrypt params key;
          });
    encode = Pohlig_hellman.encode params;
  }

let xor_pad rng params =
  {
    name = "xor-pad";
    fresh_keypair =
      (fun () ->
        let key = Xor_pad.generate_key rng params in
        counted
          { enc = Xor_pad.encrypt params key; dec = Xor_pad.decrypt params key });
    encode = Xor_pad.encode params;
  }
