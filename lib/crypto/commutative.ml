open Numtheory

type keypair = {
  enc : Bignum.t -> Bignum.t;
  dec : Bignum.t -> Bignum.t;
  enc_many : Bignum.t list -> Bignum.t list;
  dec_many : Bignum.t list -> Bignum.t list;
}

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
  encode : string -> Bignum.t;
}

(* Every keypair counts its layer operations scheme-agnostically, so
   the §3 set-protocol cost formulas (n²·m encryptions for ∩ₛ, plus
   n·u decryptions for ∪ₛ) are assertable whatever cipher backs the
   run.  Batch calls count one operation per element, so the counters
   are invariant under batching. *)
let counted { enc; dec; enc_many; dec_many } =
  {
    enc =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.enc";
        enc x);
    dec =
      (fun x ->
        Obs.Metrics.incr "crypto.commutative.dec";
        dec x);
    enc_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.enc";
        enc_many xs);
    dec_many =
      (fun xs ->
        Obs.Metrics.incr ~by:(List.length xs) "crypto.commutative.dec";
        dec_many xs);
  }

let pohlig_hellman rng params =
  {
    name = "pohlig-hellman";
    fresh_keypair =
      (fun () ->
        let key = Pohlig_hellman.generate_key rng params in
        counted
          {
            enc = Pohlig_hellman.encrypt params key;
            dec = Pohlig_hellman.decrypt params key;
            enc_many = Pohlig_hellman.encrypt_many params key;
            dec_many = Pohlig_hellman.decrypt_many params key;
          });
    encode = Pohlig_hellman.encode params;
  }

let xor_pad rng params =
  {
    name = "xor-pad";
    fresh_keypair =
      (fun () ->
        let key = Xor_pad.generate_key rng params in
        let enc = Xor_pad.encrypt params key in
        let dec = Xor_pad.decrypt params key in
        counted
          { enc; dec; enc_many = List.map enc; dec_many = List.map dec });
    encode = Xor_pad.encode params;
  }
