(** ChaCha20 stream cipher (RFC 8439), pure OCaml.

    Symmetric encryption for data at rest in the simulation — replica
    blobs are ChaCha20-encrypted under the owner's key with a
    glsn-derived nonce, so replica holders store ciphertext only.
    Validated against the RFC 8439 test vectors in the test suite. *)

val key_len : int
(** 32 bytes. *)

val nonce_len : int
(** 12 bytes. *)

val block : key:string -> nonce:string -> counter:int -> string
(** One 64-byte keystream block.
    @raise Invalid_argument on wrong key/nonce sizes or a negative
    counter. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the keystream (starting at [counter], default 1 per the RFC's
    AEAD convention) into the data.  Self-inverse: decryption is the
    same call.  Never reuse a (key, nonce) pair for different data. *)

val nonce_of_string : string -> string
(** Derive a deterministic 12-byte nonce from a context string (e.g. a
    glsn) by hashing — convenient when contexts are unique by
    construction. *)
