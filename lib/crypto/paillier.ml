open Numtheory

type public = { n : Bignum.t; n_squared : Bignum.t }

(* CRT decryption material: exponentiate mod p² and q² with exponents
   reduced mod the group orders p(p-1) and q(q-1), then recombine —
   the two half-size exponentiations cost ~1/4 of the full one each. *)
type crt = {
  p_squared : Bignum.t;
  q_squared : Bignum.t;
  lambda_p : Bignum.t;  (* λ mod p(p-1) *)
  lambda_q : Bignum.t;  (* λ mod q(q-1) *)
}

type secret = { lambda : Bignum.t; mu : Bignum.t; public : public; crt : crt }

let lcm a b = Bignum.div (Bignum.mul a b) (Modular.gcd a b)

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let l_function ~n x = Bignum.div (Bignum.pred x) n

(* (1+n)^m mod n² = 1 + m·n mod n² — the binomial expansion of (1+n)^m
   has every later term divisible by n².  Closed form replaces the
   generator exponentiation entirely. *)
let g_pow_m ~n ~n_squared m =
  Modular.normalize (Bignum.succ (Bignum.mul m n)) ~m:n_squared

let generate rng ~bits =
  if bits < 16 then invalid_arg "Paillier.generate: modulus too small";
  let rec go () =
    let n, p, q = Primes.rsa_modulus rng ~bits in
    let phi = Bignum.mul (Bignum.pred p) (Bignum.pred q) in
    if not (Bignum.equal (Modular.gcd n phi) Bignum.one) then go ()
    else begin
      let n_squared = Bignum.mul n n in
      let public = { n; n_squared } in
      let lambda = lcm (Bignum.pred p) (Bignum.pred q) in
      (* g = n+1: g^λ mod n² = 1 + λn, so L(g^λ) = λ mod n. *)
      let g_lambda = g_pow_m ~n ~n_squared lambda in
      match Modular.inverse (l_function ~n g_lambda) ~m:n with
      | Some mu ->
        let crt =
          {
            p_squared = Bignum.mul p p;
            q_squared = Bignum.mul q q;
            lambda_p = Bignum.erem lambda (Bignum.mul p (Bignum.pred p));
            lambda_q = Bignum.erem lambda (Bignum.mul q (Bignum.pred q));
          }
        in
        (public, { lambda; mu; public; crt })
      | None -> go ()
    end
  in
  go ()

let encrypt rng { n; n_squared } m =
  if Bignum.sign m < 0 || Bignum.compare m n >= 0 then
    invalid_arg "Paillier.encrypt: plaintext outside [0, n)";
  (* c = (1+n)^m * r^n mod n², with random r coprime to n.  The
     generator factor uses the closed form, so one modexp per
     encryption (the blinding r^n), not two. *)
  let rec random_unit () =
    let r = Prng.bignum_range rng Bignum.one n in
    if Bignum.equal (Modular.gcd r n) Bignum.one then r else random_unit ()
  in
  let r = random_unit () in
  Obs.Metrics.incr "crypto.modexp";
  let gm = g_pow_m ~n ~n_squared m in
  let rn = Modular.pow r n ~m:n_squared in
  Modular.mul gm rn ~m:n_squared

let encrypt_many rng { n; n_squared } ms =
  (* Batch encryption: validation and blinding-factor draws happen in
     exactly the scalar order (same rng stream, same failure point on a
     bad plaintext), then the r^n blindings share one fixed-exponent
     plan.  The generator factor stays closed-form, so ciphertexts are
     byte-identical to mapping [encrypt]. *)
  let rec random_unit () =
    let r = Prng.bignum_range rng Bignum.one n in
    if Bignum.equal (Modular.gcd r n) Bignum.one then r else random_unit ()
  in
  let pairs =
    List.map
      (fun m ->
        if Bignum.sign m < 0 || Bignum.compare m n >= 0 then
          invalid_arg "Paillier.encrypt: plaintext outside [0, n)";
        (m, random_unit ()))
      ms
  in
  Obs.Metrics.incr ~by:(List.length ms) "crypto.modexp";
  let rns = Modular.pow_many (List.map snd pairs) n ~m:n_squared in
  List.map2
    (fun (m, _) rn -> Modular.mul (g_pow_m ~n ~n_squared m) rn ~m:n_squared)
    pairs rns

(* c^λ mod n² by CRT.  Valid ciphertexts are units mod n², where the
   group orders mod p² and q² let the exponents be pre-reduced; the
   recombined value is the unique x = c^λ mod n², so decryption output
   is bit-identical to the direct path. *)
let pow_lambda secret c =
  let { n_squared; _ } = secret.public in
  let { p_squared; q_squared; lambda_p; lambda_q } = secret.crt in
  if Bignum.equal (Modular.gcd c n_squared) Bignum.one then begin
    let xp = Modular.pow c lambda_p ~m:p_squared in
    let xq = Modular.pow c lambda_q ~m:q_squared in
    fst (Modular.crt [ (xp, p_squared); (xq, q_squared) ])
  end
  else
    (* Not a unit (invalid ciphertext): no order shortcut, take the
       direct path so behavior on garbage input is unchanged. *)
    Modular.pow c secret.lambda ~m:n_squared

let decrypt { n; _ } secret c =
  (* One logical decryption exponentiation, CRT-split internally. *)
  Obs.Metrics.incr "crypto.modexp";
  let x = pow_lambda secret c in
  Modular.mul (l_function ~n x) secret.mu ~m:n

let add { n_squared; _ } c1 c2 =
  Obs.Metrics.incr "crypto.paillier.add";
  Modular.mul c1 c2 ~m:n_squared

let scale { n_squared; _ } c ~by =
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow c by ~m:n_squared

let add_scaled { n_squared; _ } c1 ~by1 c2 ~by2 =
  (* Homomorphic linear combination b1·m1 + b2·m2 in one simultaneous
     multi-exponentiation: the squaring chain is shared between the
     two ciphertexts instead of paid twice ([scale] + [scale] + [add]).
     Counters record the two logical scalings and the addition. *)
  Obs.Metrics.incr ~by:2 "crypto.modexp";
  Obs.Metrics.incr "crypto.paillier.add";
  Modular.multi_pow [ (c1, by1); (c2, by2) ] ~m:n_squared
