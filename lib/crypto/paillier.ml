open Numtheory

type public = { n : Bignum.t; n_squared : Bignum.t }
type secret = { lambda : Bignum.t; mu : Bignum.t; public : public }

let lcm a b = Bignum.div (Bignum.mul a b) (Modular.gcd a b)

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let l_function ~n x = Bignum.div (Bignum.pred x) n

let generate rng ~bits =
  if bits < 16 then invalid_arg "Paillier.generate: modulus too small";
  let rec go () =
    let n, p, q = Primes.rsa_modulus rng ~bits in
    let phi = Bignum.mul (Bignum.pred p) (Bignum.pred q) in
    if not (Bignum.equal (Modular.gcd n phi) Bignum.one) then go ()
    else begin
      let n_squared = Bignum.mul n n in
      let public = { n; n_squared } in
      let lambda = lcm (Bignum.pred p) (Bignum.pred q) in
      (* g = n+1: g^λ mod n² = 1 + λn, so L(g^λ) = λ mod n. *)
      let g_lambda =
        Modular.pow (Bignum.succ n) lambda ~m:n_squared
      in
      match Modular.inverse (l_function ~n g_lambda) ~m:n with
      | Some mu -> (public, { lambda; mu; public })
      | None -> go ()
    end
  in
  go ()

let encrypt rng { n; n_squared } m =
  if Bignum.sign m < 0 || Bignum.compare m n >= 0 then
    invalid_arg "Paillier.encrypt: plaintext outside [0, n)";
  (* c = (1+n)^m * r^n mod n², with random r coprime to n. *)
  let rec random_unit () =
    let r = Prng.bignum_range rng Bignum.one n in
    if Bignum.equal (Modular.gcd r n) Bignum.one then r else random_unit ()
  in
  let r = random_unit () in
  Obs.Metrics.incr ~by:2 "crypto.modexp";
  let gm = Modular.pow (Bignum.succ n) m ~m:n_squared in
  let rn = Modular.pow r n ~m:n_squared in
  Modular.mul gm rn ~m:n_squared

let decrypt { n; n_squared } secret c =
  Obs.Metrics.incr "crypto.modexp";
  let x = Modular.pow c secret.lambda ~m:n_squared in
  Modular.mul (l_function ~n x) secret.mu ~m:n

let add { n_squared; _ } c1 c2 =
  Obs.Metrics.incr "crypto.paillier.add";
  Modular.mul c1 c2 ~m:n_squared

let scale { n_squared; _ } c ~by =
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow c by ~m:n_squared
