(** Forward-secure audit log (Schneier–Kelsey style, the paper's ref
    [25] "Secure Audit Logs to Support Computer Forensics").

    The single-node alternative the paper contrasts its cluster with:
    entries are MAC'd under an evolving key ([K_{i+1} = H(K_i)], old key
    erased) and hash-chained, so an attacker who compromises the node at
    time t holds only [K_t] and cannot forge, alter or silently truncate
    anything written before t.  A verifier holding the initial key
    replays the evolution and checks every link.

    What it cannot do — and why the paper goes distributed — is
    {e confidential sharing}: the node still holds all its plaintext,
    and an attacker with [K_t] can fabricate everything after t. *)

type entry = private {
  index : int;
  payload : string;
  mac : string;  (** HMAC(K_index, index ‖ payload ‖ previous mac) *)
}

type t

val create : initial_key:string -> t
(** A fresh writer.  Keep [initial_key] with the (offline) verifier;
    the writer's copy evolves away immediately. *)

val append : t -> string -> entry
(** MAC under the current key, then evolve and erase it. *)

val entries : t -> entry list
(** Oldest first. *)

val current_key : t -> string
(** What an attacker gets by compromising the node now. *)

val verify : initial_key:string -> entry list -> (unit, string) result
(** Replay the key evolution and check every entry and chain link; the
    error names the first bad index. *)

val forge_with_key : key:string -> index:int -> previous_mac:string ->
  payload:string -> entry
(** Test helper — what an attacker can construct from a captured key:
    an entry MAC'd under [key].  Verification must reject it for any
    index whose true key predates the capture. *)
