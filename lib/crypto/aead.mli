(** ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

    Authenticated encryption with associated data — the sealing
    primitive for encrypted-at-rest replica blobs: the glsn rides as
    associated data, so a blob cannot be replayed under another record
    even by a holder that never learns the plaintext. *)

val seal :
  key:string -> nonce:string -> ad:string -> string -> string
(** [ciphertext ‖ 16-byte tag].
    @raise Invalid_argument on wrong key/nonce sizes. *)

val open_ :
  key:string -> nonce:string -> ad:string -> string -> string option
(** [None] when the tag fails (corrupt data, wrong key/nonce/AD). *)
