(** Keyed XOR pad — the paper's toy commutative cipher.

    §3 of the paper notes that "the XOR Boolean logic with individual
    keys is a commutative cipher because XOR is a commutative operation".
    Each key deterministically expands (via HMAC-SHA256) to a
    [width_bits]-wide pad; encryption XORs the pad in, so encryptions
    under different keys trivially commute.

    It is *much* cheaper than Pohlig–Hellman but weaker: a node that sees
    two ciphertexts under the same key learns their XOR difference.  The
    benches compare both (DESIGN.md ablation "commutative cipher
    choice"). *)

open Numtheory

type params = private { width_bits : int }
type key

val params : width_bits:int -> params
(** @raise Invalid_argument unless [width_bits > 0]. *)

val generate_key : Numtheory.Prng.t -> params -> key

val encrypt : params -> key -> Bignum.t -> Bignum.t
(** Self-inverse: [decrypt] is the same operation.
    @raise Invalid_argument if the message exceeds [width_bits]. *)

val decrypt : params -> key -> Bignum.t -> Bignum.t

val encode : params -> string -> Bignum.t
(** Deterministic hash-embedding into [\[0, 2^width_bits)]. *)
