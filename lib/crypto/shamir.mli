(** Shamir (k, n) secret sharing over Z_p (paper §3.5).

    Each DLA node P_i hides its local value a_i in the constant term of a
    random degree-(k-1) polynomial f_i and distributes evaluations
    f_i(x_j) to its peers.  Because sharing is linear, nodes can add (or
    scale) shares locally; reconstructing the summed polynomial's constant
    term yields Σ a_i — the paper's secure sum — without any node ever
    seeing another's value. *)

open Numtheory

type share = { x : Bignum.t; y : Bignum.t }

exception Duplicate_points of { stage : string; points : Bignum.t list }
(** Raised by {!split} and {!reconstruct} when two evaluation points /
    share x-coordinates coincide.  [points] lists each offending
    x-coordinate once; [stage] is ["split"] or ["reconstruct"].
    Lagrange interpolation through duplicated points would divide by
    [x_j - x_i = 0] or silently produce garbage, so this is a typed,
    catchable rejection rather than a stringly [Invalid_argument]. *)

val default_xs : n:int -> Bignum.t list
(** The canonical public evaluation points 1..n. *)

val split :
  Numtheory.Prng.t ->
  p:Bignum.t ->
  k:int ->
  xs:Bignum.t list ->
  secret:Bignum.t ->
  share list
(** Random degree-(k-1) polynomial with constant term [secret], evaluated
    at each point of [xs].
    @raise Invalid_argument if [k < 1], [k > length xs], a point is zero
    mod [p], or the secret is outside [\[0, p)].
    @raise Duplicate_points if two points coincide mod [p]. *)

val reconstruct : p:Bignum.t -> share list -> Bignum.t
(** Lagrange interpolation at zero.  Correct whenever at least [k] shares
    of the original polynomial are supplied (extras are consistent).
    @raise Invalid_argument on empty input.
    @raise Duplicate_points on repeated x-coordinates. *)

type robust = {
  secret : Bignum.t;  (** constant term of the winning polynomial *)
  agreeing : share list;  (** shares consistent with it *)
  forged : share list;  (** shares that voted against it — the lies *)
}

exception
  Inconsistent_shares of { agreement : int; required : int; total : int }
(** Raised by {!reconstruct_robust} when no degree-(k-1) polynomial is
    supported by at least [max k (n/2 + 1)] of the supplied shares —
    i.e. the forgeries exceed what consistency voting can outvote. *)

val reconstruct_robust : p:Bignum.t -> k:int -> share list -> robust
(** Byzantine-tolerant reconstruction by consistency voting
    (over-provisioned k-of-n): interpolate every k-subset and keep the
    polynomial the most shares lie on, requiring both a full threshold
    and a strict majority of support.  Shares off the winning
    polynomial are returned as [forged] — their x-coordinates identify
    the lying dealers.  With [n = length shares = k] there is no
    redundancy to vote with and this degrades to {!reconstruct}.
    @raise Invalid_argument if [k < 1] or fewer than [k] shares.
    @raise Duplicate_points on repeated x-coordinates.
    @raise Inconsistent_shares when no polynomial wins the vote. *)

val add_shares : p:Bignum.t -> share -> share -> share
(** Pointwise sum; both shares must sit at the same [x].
    Shares of [a] plus shares of [b] are shares of [a + b]. *)

val scale_share : p:Bignum.t -> Bignum.t -> share -> share
(** Shares of [a] scaled by public [c] are shares of [c * a] — the
    weighted-sum variant at the end of §3.5. *)

val sum_shares : p:Bignum.t -> share list -> share
(** Fold of {!add_shares}.  @raise Invalid_argument on empty input. *)
