(** Shamir (k, n) secret sharing over Z_p (paper §3.5).

    Each DLA node P_i hides its local value a_i in the constant term of a
    random degree-(k-1) polynomial f_i and distributes evaluations
    f_i(x_j) to its peers.  Because sharing is linear, nodes can add (or
    scale) shares locally; reconstructing the summed polynomial's constant
    term yields Σ a_i — the paper's secure sum — without any node ever
    seeing another's value. *)

open Numtheory

type share = { x : Bignum.t; y : Bignum.t }

exception Duplicate_points of { stage : string; points : Bignum.t list }
(** Raised by {!split} and {!reconstruct} when two evaluation points /
    share x-coordinates coincide.  [points] lists each offending
    x-coordinate once; [stage] is ["split"] or ["reconstruct"].
    Lagrange interpolation through duplicated points would divide by
    [x_j - x_i = 0] or silently produce garbage, so this is a typed,
    catchable rejection rather than a stringly [Invalid_argument]. *)

val default_xs : n:int -> Bignum.t list
(** The canonical public evaluation points 1..n. *)

val split :
  Numtheory.Prng.t ->
  p:Bignum.t ->
  k:int ->
  xs:Bignum.t list ->
  secret:Bignum.t ->
  share list
(** Random degree-(k-1) polynomial with constant term [secret], evaluated
    at each point of [xs].
    @raise Invalid_argument if [k < 1], [k > length xs], a point is zero
    mod [p], or the secret is outside [\[0, p)].
    @raise Duplicate_points if two points coincide mod [p]. *)

val reconstruct : p:Bignum.t -> share list -> Bignum.t
(** Lagrange interpolation at zero.  Correct whenever at least [k] shares
    of the original polynomial are supplied (extras are consistent).
    @raise Invalid_argument on empty input.
    @raise Duplicate_points on repeated x-coordinates. *)

val add_shares : p:Bignum.t -> share -> share -> share
(** Pointwise sum; both shares must sit at the same [x].
    Shares of [a] plus shares of [b] are shares of [a + b]. *)

val scale_share : p:Bignum.t -> Bignum.t -> share -> share
(** Shares of [a] scaled by public [c] are shares of [c * a] — the
    weighted-sum variant at the end of §3.5. *)

val sum_shares : p:Bignum.t -> share list -> share
(** Fold of {!add_shares}.  @raise Invalid_argument on empty input. *)
