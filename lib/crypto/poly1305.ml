open Numtheory

(* p = 2^130 - 5 *)
let p =
  Bignum.sub (Bignum.shift_left Bignum.one 130) (Bignum.of_int 5)

let le_bytes_to_bignum s =
  (* little-endian bytes *)
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (Bignum.add_int (Bignum.shift_left acc 8) (Char.code s.[i]))
  in
  go (String.length s - 1) Bignum.zero

let clamp r =
  (* r &= 0x0ffffffc0ffffffc0ffffffc0fffffff (little-endian order) *)
  let mask = Bignum.of_hex "0ffffffc0ffffffc0ffffffc0fffffff" in
  Bignum.logand r mask

let mac ~key msg =
  if String.length key <> 32 then invalid_arg "Poly1305: bad key length";
  let r = clamp (le_bytes_to_bignum (String.sub key 0 16)) in
  let s = le_bytes_to_bignum (String.sub key 16 16) in
  let n = String.length msg in
  let acc = ref Bignum.zero in
  let nblocks = (n + 15) / 16 in
  for b = 0 to nblocks - 1 do
    let offset = 16 * b in
    let len = min 16 (n - offset) in
    let block = String.sub msg offset len in
    (* The block plus a high 0x01 byte. *)
    let v =
      Bignum.logor
        (le_bytes_to_bignum block)
        (Bignum.shift_left Bignum.one (8 * len))
    in
    acc := Modular.mul (Bignum.add !acc v) r ~m:p
  done;
  let tag = Bignum.add !acc s in
  (* Low 128 bits, little-endian. *)
  String.init 16 (fun i ->
      match Bignum.to_int_opt
              (Bignum.logand
                 (Bignum.shift_right tag (8 * i))
                 (Bignum.of_int 255))
      with
      | Some b -> Char.chr b
      | None -> assert false)

let verify ~key ~tag msg =
  String.length tag = 16 && String.equal (mac ~key msg) tag
