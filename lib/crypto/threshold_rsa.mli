(** (k, n)-threshold RSA signatures (Shoup-style, simplified trusted
    dealer).

    Paper §2: "DLA nodes use secure multiparty computations, {e threshold
    signature} and distributed majority agreement to provide trusted and
    reliable auditing."  A cluster-issued statement (an audit verdict, a
    membership decision) is valid only if at least [k] of the [n] DLA
    nodes contributed — no single node can sign on the cluster's behalf.

    Construction: RSA over a product of safe primes; the signing
    exponent [d] is Shamir-shared over [Z_m] ([m = p'·q'], the order of
    the squares subgroup); partials are [x^(2Δ·s_i)] with [Δ = n!]; the
    combiner interpolates in the exponent with integer Lagrange
    coefficients and removes the [4Δ²] factor with Bézout, so the result
    verifies against the *plain* RSA equation [σ^e = H(m)² mod n].

    The dealer is trusted at setup (key generation), matching the
    paper's cluster-bootstrap trust model; signing requires no dealer. *)

open Numtheory

type params = private {
  n : Bignum.t;
  e : Bignum.t;
  k : int;  (** threshold *)
  parties : int;
  delta : Bignum.t;  (** parties! *)
}

type share = private { index : int; value : Bignum.t; params : params }
(** One node's secret key share (index is 1-based). *)

type partial = { index : int; value : Bignum.t }

val deal : Prng.t -> bits:int -> k:int -> parties:int -> params * share list
(** Generate the key and deal one share per party.
    @raise Invalid_argument unless [1 <= k <= parties] and
    [bits >= 32].  Safe-prime generation makes large [bits] slow;
    128–256 are practical here. *)

val digest_to_group : params -> string -> Bignum.t
(** [H(msg)^2 mod n], the signed representative (a quadratic residue). *)

val partial_sign : share -> string -> partial
(** One node's partial [x^(2Δ·sᵢ)].  Every party signs the same digest
    base [x], so the power runs through the fixed-base window table
    ({!Numtheory.Modular.pow_base}) — shares after the first reuse it. *)

val partial_sign_all : share list -> string -> partial list
(** All partials for one message: the digest base is computed once and
    the shared window table amortized across the whole share list.
    Partials are identical to mapping {!partial_sign}. *)

val combine : params -> string -> partial list -> (Bignum.t, string) result
(** Interpolate [>= k] distinct partials into a full signature; the
    result is verified internally, so corrupt or insufficient partials
    yield [Error] rather than a bogus signature.  The Lagrange
    interpolation in the exponent and the Bézout cleanup both run as
    simultaneous multi-exponentiations ({!Numtheory.Modular.multi_pow}),
    sharing one squaring chain across the partials. *)

val verify : params -> string -> Bignum.t -> bool
(** Plain RSA check: [σ^e = H(msg)^2 mod n]. *)
