let hash_len = 32

let extract ?(salt = String.make hash_len '\000') ~ikm () =
  Sha256.hmac ~key:salt ikm

let expand ~prk ~info ~length =
  if length < 0 || length > 255 * hash_len then
    invalid_arg "Hkdf.expand: length out of range";
  let buf = Buffer.create length in
  let rec go previous i =
    if Buffer.length buf < length then begin
      let block =
        Sha256.hmac ~key:prk (previous ^ info ^ String.make 1 (Char.chr i))
      in
      Buffer.add_string buf block;
      go block (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 length

let derive ~ikm ~info ~length =
  expand ~prk:(extract ~ikm ()) ~info ~length
