open Numtheory

type params = {
  n : Bignum.t;
  e : Bignum.t;
  k : int;
  parties : int;
  delta : Bignum.t;
}

type share = { index : int; value : Bignum.t; params : params }
type partial = { index : int; value : Bignum.t }

let factorial n =
  let rec go acc i =
    if i > n then acc else go (Bignum.mul_int acc i) (i + 1)
  in
  go Bignum.one 2

let deal rng ~bits ~k ~parties =
  if k < 1 || k > parties then invalid_arg "Threshold_rsa.deal: bad threshold";
  if bits < 32 then invalid_arg "Threshold_rsa.deal: modulus too small";
  (* Safe-prime modulus: the squares subgroup then has order m = p'q',
     which is where d lives and where Shamir interpolation happens. *)
  let half = bits / 2 in
  let p = Primes.random_safe_prime rng ~bits:half in
  let rec distinct () =
    let q = Primes.random_safe_prime rng ~bits:half in
    if Bignum.equal p q then distinct () else q
  in
  let q = distinct () in
  let n = Bignum.mul p q in
  let m =
    Bignum.mul
      (Bignum.shift_right (Bignum.pred p) 1)
      (Bignum.shift_right (Bignum.pred q) 1)
  in
  (* e must be prime, > parties, and coprime to m. *)
  let rec pick_e candidate =
    let e = Primes.next_prime rng candidate in
    if Bignum.equal (Modular.gcd e m) Bignum.one then e
    else pick_e e
  in
  let e = pick_e (Bignum.of_int (max 65536 parties)) in
  let d = Modular.inverse_exn e ~m in
  let params = { n; e; k; parties; delta = factorial parties } in
  let xs = List.init parties (fun i -> Bignum.of_int (i + 1)) in
  let shares = Shamir.split rng ~p:m ~k ~xs ~secret:d in
  ( params,
    List.mapi
      (fun i (s : Shamir.share) -> { index = i + 1; value = s.Shamir.y; params })
      shares )

let digest_to_group { n; _ } msg =
  let h = Bignum.erem (Bignum.of_bytes_be (Sha256.digest msg)) n in
  Modular.mul h h ~m:n

(* All parties sign the same digest base [x], so each signing round is
   a fixed-base workload: the window table for [x] is built once (LRU
   under [(n, x)]) and every share's partial costs one table
   multiplication per exponent window, no squarings. *)
let partial_sign_of x share =
  let { n; delta; _ } = share.params in
  let exponent = Bignum.mul (Bignum.shift_left delta 1) share.value in
  { index = share.index; value = Modular.pow_base ~base:x exponent ~m:n }

let partial_sign share msg =
  partial_sign_of (digest_to_group share.params msg) share

let partial_sign_all shares msg =
  match shares with
  | [] -> []
  | first :: _ ->
    let x = digest_to_group first.params msg in
    List.map (partial_sign_of x) shares

(* A (base, exponent) pair for [Modular.multi_pow] with a possibly
   negative exponent: fold the sign into the base via the inverse. *)
let signed_term v e ~m =
  if Bignum.sign e >= 0 then (v, e)
  else (Modular.inverse_exn v ~m, Bignum.neg e)

(* Integer Lagrange coefficient λ_i = Δ · Π_{j≠i} (0-j)/(i-j) over the
   given index subset; Δ = parties! makes the division exact. *)
let lagrange params subset i =
  let num, den =
    List.fold_left
      (fun (num, den) j ->
        if j = i then (num, den)
        else (Bignum.mul_int num (-j), Bignum.mul_int den (i - j)))
      (params.delta, Bignum.one)
      subset
  in
  let q, r = Bignum.div_rem num den in
  assert (Bignum.is_zero r);
  q

let combine params msg partials =
  let indices = List.map (fun p -> p.index) partials in
  if List.length (List.sort_uniq compare indices) <> List.length indices then
    Error "duplicate partial indices"
  else if List.exists (fun i -> i < 1 || i > params.parties) indices then
    Error "partial index out of range"
  else begin
    let x = digest_to_group params msg in
    (* w = Π x_i^(2 λ_i) = x^(4 Δ² d): one simultaneous
       multi-exponentiation over all partials — the squaring chain is
       shared across the k bases instead of paid per partial. *)
    let w =
      Modular.multi_pow
        (List.map
           (fun partial ->
             let lambda = lagrange params indices partial.index in
             signed_term partial.value (Bignum.shift_left lambda 1)
               ~m:params.n)
           partials)
        ~m:params.n
    in
    (* Remove the 4Δ² factor: a·4Δ² + b·e = 1 (gcd is 1 since e is an
       odd prime > parties), so σ = w^a · x^b has σ^e = x. *)
    let e' = Bignum.shift_left (Bignum.mul params.delta params.delta) 2 in
    let g, a, b = Modular.extended_gcd e' params.e in
    if not (Bignum.equal g Bignum.one) then Error "exponents not coprime"
    else begin
      let signature =
        Modular.multi_pow
          [ signed_term w a ~m:params.n; signed_term x b ~m:params.n ]
          ~m:params.n
      in
      if
        Bignum.equal
          (Modular.pow signature params.e
             ~m:params.n (* generic-path: per-run signature base *))
          x
      then Ok signature
      else Error "combination failed verification (insufficient or corrupt partials)"
    end
  end

let verify params msg signature =
  Bignum.equal
    (Modular.pow signature params.e
       ~m:params.n (* generic-path: per-run signature base *))
    (digest_to_group params msg)
