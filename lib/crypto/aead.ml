(* RFC 8439 §2.8: one-time Poly1305 key from ChaCha20 block 0; MAC input
   is AD and ciphertext, zero-padded to 16, plus their lengths. *)

let pad16 s =
  let r = String.length s mod 16 in
  if r = 0 then s else s ^ String.make (16 - r) '\000'

let le64 n =
  String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let mac_data ~ad ~ciphertext =
  pad16 ad ^ pad16 ciphertext ^ le64 (String.length ad)
  ^ le64 (String.length ciphertext)

let one_time_key ~key ~nonce =
  String.sub (Chacha20.block ~key ~nonce ~counter:0) 0 32

let seal ~key ~nonce ~ad plaintext =
  Obs.Metrics.incr "crypto.aead.seal";
  let ciphertext = Chacha20.encrypt ~key ~nonce ~counter:1 plaintext in
  let otk = one_time_key ~key ~nonce in
  let tag = Poly1305.mac ~key:otk (mac_data ~ad ~ciphertext) in
  ciphertext ^ tag

let open_ ~key ~nonce ~ad sealed =
  Obs.Metrics.incr "crypto.aead.open";
  if String.length sealed < 16 then None
  else begin
    let clen = String.length sealed - 16 in
    let ciphertext = String.sub sealed 0 clen in
    let tag = String.sub sealed clen 16 in
    let otk = one_time_key ~key ~nonce in
    if not (Poly1305.verify ~key:otk ~tag (mac_data ~ad ~ciphertext)) then None
    else Some (Chacha20.encrypt ~key ~nonce ~counter:1 ciphertext)
  end
