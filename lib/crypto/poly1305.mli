(** Poly1305 one-time authenticator (RFC 8439 §2.5), on the bignum
    substrate.

    Combined with {!Chacha20} into the standard AEAD construction
    ({!Aead}); validated against the RFC 8439 test vectors. *)

val mac : key:string -> string -> string
(** 16-byte tag.  The 32-byte [key] must be used for one message only
    (the AEAD derives it per-nonce).
    @raise Invalid_argument on a wrong key size. *)

val verify : key:string -> tag:string -> string -> bool
