(** Hash commitments.

    Building block for the evidence-chain handshake (paper §4.2,
    Figure 7): a party commits to its policy proposal / service
    commitment before identities are revealed, and the opening later
    proves the negotiated terms were not altered ("r-binding" of the
    service terms into the evidence piece). *)

type t
(** An opaque 32-byte commitment. *)

type opening = { value : string; nonce : string }

val commit : Numtheory.Prng.t -> string -> t * opening
(** Commit to a byte string with a fresh 32-byte nonce. *)

val verify : t -> opening -> bool

val equal : t -> t -> bool
val to_hex : t -> string
val pp : Format.formatter -> t -> unit
