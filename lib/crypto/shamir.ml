open Numtheory

type share = { x : Bignum.t; y : Bignum.t }

exception Duplicate_points of { stage : string; points : Bignum.t list }

let () =
  Printexc.register_printer (function
    | Duplicate_points { stage; points } ->
      Some
        (Printf.sprintf "Shamir.Duplicate_points(%s: %s)" stage
           (String.concat ", " (List.map Bignum.to_string points)))
    | _ -> None)

let duplicate_points xs =
  let sorted = List.sort Bignum.compare xs in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      if Bignum.equal a b && not (List.exists (Bignum.equal a) acc) then
        go (a :: acc) rest
      else go acc rest
    | _ -> List.rev acc
  in
  go [] sorted

let check_distinct ~stage xs =
  match duplicate_points xs with
  | [] -> ()
  | points -> raise (Duplicate_points { stage; points })

let default_xs ~n = List.init n (fun i -> Bignum.of_int (i + 1))

let poly_eval ~p coeffs x =
  Obs.Metrics.incr "crypto.shamir.eval";
  (* Horner, most-significant coefficient first. *)
  List.fold_left
    (fun acc c -> Modular.add (Modular.mul acc x ~m:p) c ~m:p)
    Bignum.zero coeffs

let split rng ~p ~k ~xs ~secret =
  if k < 1 then invalid_arg "Shamir.split: k must be >= 1";
  if k > List.length xs then invalid_arg "Shamir.split: k exceeds share count";
  if Bignum.sign secret < 0 || Bignum.compare secret p >= 0 then
    invalid_arg "Shamir.split: secret outside [0, p)";
  let normalized = List.map (fun x -> Modular.normalize x ~m:p) xs in
  if List.exists Bignum.is_zero normalized then
    invalid_arg "Shamir.split: evaluation point is zero mod p";
  check_distinct ~stage:"split" normalized;
  (* coefficients c_{k-1} .. c_1, then the secret as constant term *)
  let high = List.init (k - 1) (fun _ -> Prng.bignum_below rng p) in
  let coeffs = high @ [ secret ] in
  List.map (fun x -> { x; y = poly_eval ~p coeffs x }) xs

let reconstruct ~p shares =
  match shares with
  | [] -> invalid_arg "Shamir.reconstruct: no shares"
  | _ ->
    check_distinct ~stage:"reconstruct" (List.map (fun s -> s.x) shares);
    Obs.Metrics.incr "crypto.shamir.interpolate";
    (* F(0) = Σ_i y_i Π_{j≠i} x_j / (x_j - x_i)  (mod p) *)
    List.fold_left
      (fun acc si ->
        let num, den =
          List.fold_left
            (fun (num, den) sj ->
              if Bignum.equal si.x sj.x then (num, den)
              else
                ( Modular.mul num sj.x ~m:p,
                  Modular.mul den (Modular.sub sj.x si.x ~m:p) ~m:p ))
            (Bignum.one, Bignum.one) shares
        in
        let coeff = Modular.mul num (Modular.inverse_exn den ~m:p) ~m:p in
        Modular.add acc (Modular.mul si.y coeff ~m:p) ~m:p)
      Bignum.zero shares

(* Lagrange interpolation of the polynomial through [basis], evaluated
   at [x0] — generalizes [reconstruct] (which is the [x0 = 0] case). *)
let interpolate_at ~p basis x0 =
  List.fold_left
    (fun acc si ->
      let num, den =
        List.fold_left
          (fun (num, den) sj ->
            if Bignum.equal si.x sj.x then (num, den)
            else
              ( Modular.mul num (Modular.sub x0 sj.x ~m:p) ~m:p,
                Modular.mul den (Modular.sub si.x sj.x ~m:p) ~m:p ))
          (Bignum.one, Bignum.one) basis
      in
      let coeff = Modular.mul num (Modular.inverse_exn den ~m:p) ~m:p in
      Modular.add acc (Modular.mul si.y coeff ~m:p) ~m:p)
    Bignum.zero basis

type robust = { secret : Bignum.t; agreeing : share list; forged : share list }

exception
  Inconsistent_shares of { agreement : int; required : int; total : int }

let () =
  Printexc.register_printer (function
    | Inconsistent_shares { agreement; required; total } ->
      Some
        (Printf.sprintf
           "Shamir.Inconsistent_shares(best agreement %d of %d, need %d)"
           agreement total required)
    | _ -> None)

let rec k_subsets k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest ->
      List.map (fun s -> x :: s) (k_subsets (k - 1) rest) @ k_subsets k rest

let reconstruct_robust ~p ~k shares =
  let n = List.length shares in
  if k < 1 then invalid_arg "Shamir.reconstruct_robust: k must be >= 1";
  if n < k then invalid_arg "Shamir.reconstruct_robust: fewer shares than k";
  check_distinct ~stage:"reconstruct" (List.map (fun s -> s.x) shares);
  Obs.Metrics.incr "crypto.shamir.robust";
  if n = k then
    (* no redundancy: voting is vacuous, fall back to plain interpolation *)
    { secret = reconstruct ~p shares; agreeing = shares; forged = [] }
  else begin
    (* Consistency voting over every k-subset: the true polynomial is the
       one the most shares lie on.  n is the DLA cluster size (single
       digits), so the binomial enumeration is cheap. *)
    let agrees_with basis s =
      List.exists (fun b -> Bignum.equal b.x s.x) basis
      || Bignum.equal s.y (interpolate_at ~p basis s.x)
    in
    let best_basis, best_agreement =
      List.fold_left
        (fun (best, best_count) basis ->
          let count =
            List.length (List.filter (agrees_with basis) shares)
          in
          if count > best_count then (basis, count) else (best, best_count))
        ([], 0) (k_subsets k shares)
    in
    (* A winning polynomial must be supported both by a full threshold
       and by a strict majority — otherwise the colluders could outvote
       the honest shares and attribution would be meaningless. *)
    let required = max k ((n / 2) + 1) in
    if best_agreement < required then
      raise
        (Inconsistent_shares
           { agreement = best_agreement; required; total = n });
    let agreeing, forged = List.partition (agrees_with best_basis) shares in
    { secret = interpolate_at ~p agreeing Bignum.zero; agreeing; forged }
  end

let add_shares ~p a b =
  if not (Bignum.equal a.x b.x) then
    invalid_arg "Shamir.add_shares: mismatched evaluation points";
  { x = a.x; y = Modular.add a.y b.y ~m:p }

let scale_share ~p c s = { s with y = Modular.mul c s.y ~m:p }

let sum_shares ~p = function
  | [] -> invalid_arg "Shamir.sum_shares: no shares"
  | first :: rest -> List.fold_left (add_shares ~p) first rest
