open Numtheory

type share = { x : Bignum.t; y : Bignum.t }

exception Duplicate_points of { stage : string; points : Bignum.t list }

let () =
  Printexc.register_printer (function
    | Duplicate_points { stage; points } ->
      Some
        (Printf.sprintf "Shamir.Duplicate_points(%s: %s)" stage
           (String.concat ", " (List.map Bignum.to_string points)))
    | _ -> None)

let duplicate_points xs =
  let sorted = List.sort Bignum.compare xs in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      if Bignum.equal a b && not (List.exists (Bignum.equal a) acc) then
        go (a :: acc) rest
      else go acc rest
    | _ -> List.rev acc
  in
  go [] sorted

let check_distinct ~stage xs =
  match duplicate_points xs with
  | [] -> ()
  | points -> raise (Duplicate_points { stage; points })

let default_xs ~n = List.init n (fun i -> Bignum.of_int (i + 1))

let poly_eval ~p coeffs x =
  Obs.Metrics.incr "crypto.shamir.eval";
  (* Horner, most-significant coefficient first. *)
  List.fold_left
    (fun acc c -> Modular.add (Modular.mul acc x ~m:p) c ~m:p)
    Bignum.zero coeffs

let split rng ~p ~k ~xs ~secret =
  if k < 1 then invalid_arg "Shamir.split: k must be >= 1";
  if k > List.length xs then invalid_arg "Shamir.split: k exceeds share count";
  if Bignum.sign secret < 0 || Bignum.compare secret p >= 0 then
    invalid_arg "Shamir.split: secret outside [0, p)";
  let normalized = List.map (fun x -> Modular.normalize x ~m:p) xs in
  if List.exists Bignum.is_zero normalized then
    invalid_arg "Shamir.split: evaluation point is zero mod p";
  check_distinct ~stage:"split" normalized;
  (* coefficients c_{k-1} .. c_1, then the secret as constant term *)
  let high = List.init (k - 1) (fun _ -> Prng.bignum_below rng p) in
  let coeffs = high @ [ secret ] in
  List.map (fun x -> { x; y = poly_eval ~p coeffs x }) xs

let reconstruct ~p shares =
  match shares with
  | [] -> invalid_arg "Shamir.reconstruct: no shares"
  | _ ->
    check_distinct ~stage:"reconstruct" (List.map (fun s -> s.x) shares);
    Obs.Metrics.incr "crypto.shamir.interpolate";
    (* F(0) = Σ_i y_i Π_{j≠i} x_j / (x_j - x_i)  (mod p) *)
    List.fold_left
      (fun acc si ->
        let num, den =
          List.fold_left
            (fun (num, den) sj ->
              if Bignum.equal si.x sj.x then (num, den)
              else
                ( Modular.mul num sj.x ~m:p,
                  Modular.mul den (Modular.sub sj.x si.x ~m:p) ~m:p ))
            (Bignum.one, Bignum.one) shares
        in
        let coeff = Modular.mul num (Modular.inverse_exn den ~m:p) ~m:p in
        Modular.add acc (Modular.mul si.y coeff ~m:p) ~m:p)
      Bignum.zero shares

let add_shares ~p a b =
  if not (Bignum.equal a.x b.x) then
    invalid_arg "Shamir.add_shares: mismatched evaluation points";
  { x = a.x; y = Modular.add a.y b.y ~m:p }

let scale_share ~p c s = { s with y = Modular.mul c s.y ~m:p }

let sum_shares ~p = function
  | [] -> invalid_arg "Shamir.sum_shares: no shares"
  | first :: rest -> List.fold_left (add_shares ~p) first rest
