open Numtheory

type public = { n : Bignum.t; e : Bignum.t }
type secret = { d : Bignum.t; public : public }

let default_e = Bignum.of_int 65537

let generate rng ~bits ?(e = default_e) () =
  if bits < 16 then invalid_arg "Rsa.generate: modulus too small";
  let rec go () =
    let n, p, q = Primes.rsa_modulus rng ~bits in
    let phi = Bignum.mul (Bignum.pred p) (Bignum.pred q) in
    match Modular.inverse e ~m:phi with
    | Some d -> { d; public = { n; e } }
    | None -> go ()
  in
  go ()

let public secret = secret.public

let digest_to_group { n; _ } msg =
  let h = Bignum.erem (Bignum.of_bytes_be (Sha256.digest msg)) n in
  Modular.mul h h ~m:n

let sign secret msg =
  let x = digest_to_group secret.public msg in
  Modular.pow x secret.d ~m:secret.public.n

let sign_many secret msgs =
  (* Fixed-exponent batch: one window recoding of [d] shared across
     the digests (the dual of the fixed-base table — here the bases
     vary and the exponent is long-lived). *)
  Modular.pow_many
    (List.map (digest_to_group secret.public) msgs)
    secret.d ~m:secret.public.n

let verify public msg signature =
  let x = digest_to_group public msg in
  Bignum.equal (Modular.pow signature public.e ~m:public.n) x

let encrypt_raw { n; e } m =
  if Bignum.sign m < 0 || Bignum.compare m n >= 0 then
    invalid_arg "Rsa.encrypt_raw: message outside [0, n)"
  else Modular.pow m e ~m:n

let decrypt_raw secret c = Modular.pow c secret.d ~m:secret.public.n
