(** Paillier additively-homomorphic encryption.

    §3 of the paper observes that "the cost of multiparty private
    computation will be greatly reduced if a TTP can coordinate the
    computation" — Paillier is the textbook realization: each party
    encrypts its value under the receiver's public key, {e any}
    untrusted coordinator multiplies the ciphertexts (which adds the
    plaintexts), and only the receiver can decrypt the total.  One
    message per party instead of the Shamir protocol's n²; the trade-off
    is that the receiver's key becomes a single point of decryption
    (the benches compare both, experiment P1).

    Standard simplified-variant parameters: [n = p·q] with
    [gcd(n, φ(n)) = 1], generator [g = n+1], [λ = lcm(p-1, q-1)],
    decryption via [L(c^λ mod n²) · λ⁻¹ mod n].

    Two fast paths, both output-identical to the textbook formulas:
    encryption uses the closed form [(1+n)^m = 1 + m·n mod n²] (one
    modexp per encryption — the blinding [r^n] — instead of two), and
    decryption retains [p]/[q] in the secret key to run [c^λ] as two
    half-size CRT exponentiations with pre-reduced exponents. *)

open Numtheory

type public = private { n : Bignum.t; n_squared : Bignum.t }
type secret

val generate : Prng.t -> bits:int -> public * secret
(** Modulus of roughly [bits] bits.  @raise Invalid_argument if
    [bits < 16]. *)

val encrypt : Prng.t -> public -> Bignum.t -> Bignum.t
(** @raise Invalid_argument if the plaintext is outside [\[0, n)]. *)

val encrypt_many : Prng.t -> public -> Bignum.t list -> Bignum.t list
(** Batch encryption: blinding factors are drawn in exactly the scalar
    order from the same rng stream and the [r^n] powers share one
    fixed-exponent plan, so ciphertexts are byte-identical to mapping
    {!encrypt}.  [crypto.modexp] advances by the batch length.
    @raise Invalid_argument if any plaintext is outside [\[0, n)]. *)

val decrypt : public -> secret -> Bignum.t -> Bignum.t

val add : public -> Bignum.t -> Bignum.t -> Bignum.t
(** Homomorphic addition: [decrypt (add c1 c2) = m1 + m2 mod n]. *)

val scale : public -> Bignum.t -> by:Bignum.t -> Bignum.t
(** Homomorphic scalar multiplication:
    [decrypt (scale c ~by:k) = k·m mod n]. *)

val add_scaled :
  public -> Bignum.t -> by1:Bignum.t -> Bignum.t -> by2:Bignum.t -> Bignum.t
(** [add_scaled pub c1 ~by1 c2 ~by2] decrypts to [by1·m1 + by2·m2 mod
    n] — the weighted-sum building block, computed as one simultaneous
    multi-exponentiation ({!Numtheory.Modular.multi_pow}) instead of
    two scalings and an addition.  Counters advance as the equivalent
    [scale; scale; add] sequence. *)
