open Numtheory

type params = { width_bits : int }
type key = { secret : string; pad : Bignum.t }

let params ~width_bits =
  if width_bits <= 0 then invalid_arg "Xor_pad.params: width must be positive"
  else { width_bits }

(* Expand the secret to [width_bits] pad bits with counter-mode HMAC. *)
let derive_pad { width_bits } secret =
  let nblocks = ((width_bits + 255) / 256) in
  let rec blocks i acc =
    if i >= nblocks then acc
    else begin
      let block = Sha256.hmac ~key:secret (Printf.sprintf "xor-pad-%d" i) in
      blocks (i + 1) (Bignum.logor (Bignum.shift_left acc 256) (Bignum.of_bytes_be block))
    end
  in
  let wide = blocks 0 Bignum.zero in
  (* Truncate to exactly width_bits. *)
  Bignum.shift_right wide ((nblocks * 256) - width_bits)

let generate_key rng p =
  let secret = Prng.bytes rng 32 in
  { secret; pad = derive_pad p secret }

let check_domain { width_bits } m =
  if Bignum.sign m < 0 || Bignum.num_bits m > width_bits then
    invalid_arg "Xor_pad: message outside pad width"

let encrypt p { pad; _ } m =
  check_domain p m;
  Bignum.logxor m pad

let decrypt = encrypt

let encode p payload =
  let h = Bignum.of_bytes_be (Sha256.digest payload) in
  let width = p.width_bits in
  if width >= 256 then h else Bignum.shift_right h (256 - width)
