type entry = { index : int; payload : string; mac : string }

type t = {
  mutable key : string;
  mutable next_index : int;
  mutable previous_mac : string;
  mutable log : entry list;  (* newest first *)
}

let evolve key = Sha256.digest ("evolve:" ^ key)

let entry_mac ~key ~index ~previous_mac ~payload =
  Sha256.hmac ~key (Printf.sprintf "%d|%s|%s" index previous_mac payload)

let genesis_mac = Sha256.digest "forward-log-genesis"

let create ~initial_key =
  { key = initial_key; next_index = 0; previous_mac = genesis_mac; log = [] }

let append t payload =
  let entry =
    {
      index = t.next_index;
      payload;
      mac =
        entry_mac ~key:t.key ~index:t.next_index ~previous_mac:t.previous_mac
          ~payload;
    }
  in
  (* Evolve and forget: the old key is unrecoverable from the new one. *)
  t.key <- evolve t.key;
  t.next_index <- t.next_index + 1;
  t.previous_mac <- entry.mac;
  t.log <- entry :: t.log;
  entry

let entries t = List.rev t.log
let current_key t = t.key

let verify ~initial_key entries =
  let rec go key previous_mac expected_index = function
    | [] -> Ok ()
    | entry :: rest ->
      if entry.index <> expected_index then
        Error (Printf.sprintf "entry %d: index gap" entry.index)
      else if
        not
          (String.equal entry.mac
             (entry_mac ~key ~index:entry.index ~previous_mac
                ~payload:entry.payload))
      then Error (Printf.sprintf "entry %d: bad MAC or broken chain" entry.index)
      else go (evolve key) entry.mac (expected_index + 1) rest
  in
  go initial_key genesis_mac 0 entries

let forge_with_key ~key ~index ~previous_mac ~payload =
  { index; payload; mac = entry_mac ~key ~index ~previous_mac ~payload }
