(** One-way quasi-commutative accumulator (paper §4.1, eq 8–9; refs
    [26][27], Benaloh–de Mare style).

    [A(x, y) = x^y mod n] over an RSA modulus [n].  Accumulating a set of
    exponents gives the same value in any order — eq (9) — which is
    exactly what lets DLA nodes circulate an integrity digest around the
    ring, each folding in its own log fragment, and compare the result
    against the value the user deposited at logging time. *)

open Numtheory

type params = private { n : Bignum.t; x0 : Bignum.t }
(** [n] is an RSA modulus of unknown factorization (to the cluster);
    [x0] is the agreed start value (paper: "x0 must be agreed upon in
    advance by P and U"). *)

val generate : Numtheory.Prng.t -> bits:int -> params
(** Fresh modulus and start value.  The factors are discarded — no
    trapdoor holder exists in the cluster. *)

val of_values : n:Bignum.t -> x0:Bignum.t -> params
(** Wrap externally agreed values.
    @raise Invalid_argument unless [1 < x0 < n] and [n > 3]. *)

val exponent_of_bytes : string -> Bignum.t
(** Deterministic odd exponent derived from a payload by SHA-256 (odd so
    that it is coprime to the even group order with overwhelming
    probability). *)

val accumulate : params -> Bignum.t -> y:Bignum.t -> Bignum.t
(** One fold step: [acc^y mod n].
    @raise Invalid_argument if [y <= 0]. *)

val accumulate_bytes : params -> Bignum.t -> string -> Bignum.t
(** [accumulate] after {!exponent_of_bytes}. *)

val accumulate_all : params -> string list -> Bignum.t
(** Fold the whole list starting from [x0]. *)

val summarize : params -> Bignum.t list -> Bignum.t
(** Fold a collection of {e existing} accumulator values (e.g. the
    per-record integrity digests a cluster has deposited) into one
    summary value: each digest is re-hashed to an odd exponent and
    folded from [x0].  By eq (9) the result is independent of the
    collection order, which is what lets a checkpoint commit to "all
    digests so far" without fixing an enumeration order. *)

(** {1 Membership witnesses}

    Ref [27] of the paper (Goodrich–Tamassia–Hasic, "An Efficient
    Dynamic and Distributed Cryptographic Accumulator"): a holder of
    element [y] keeps the accumulation of {e all other} elements as a
    witness [w]; then [w^y = total] proves membership without touching
    anyone else's data.  This gives the DLA cluster a cheaper
    integrity-check mode than full ring circulation: a single node can
    be challenged in isolation (see [bench cost_integrity]'s ablation). *)

val witnesses : params -> string list -> (string * Bignum.t) list
(** [(element, witness)] for every element of the set: the witness is
    the accumulation of the other elements, so
    [accumulate (witness) (exponent element) = accumulate_all set].
    Computed as [x0^(Π_{j≠i} yⱼ)] via prefix/suffix exponent products
    over the fixed-base window table — O(n) exponentiations with zero
    squarings, value-identical to refolding the other elements. *)

val verify_membership :
  params -> total:Bignum.t -> witness:Bignum.t -> string -> bool
(** Does [witness^H(element) = total]? *)

val verify_members :
  Numtheory.Prng.t ->
  params ->
  total:Bignum.t ->
  (string * Bignum.t) list ->
  bool
(** Batch membership check over [(element, witness)] pairs by random
    linear combination: one Shamir multi-exponentiation
    ({!Numtheory.Modular.multi_pow}) replaces one full-width power per
    pair.  Complete (honest witness sets always pass); sound except
    with probability ~2⁻³⁰ per run over the sampled coefficients.
    The empty list verifies trivially. *)

val add : params -> total:Bignum.t -> string -> Bignum.t
(** Dynamic insertion: new total after accumulating one more element. *)

val update_witness :
  params -> witness:Bignum.t -> added:string -> Bignum.t
(** Keep an existing witness valid across an insertion: fold the new
    element into the witness too. *)

val update_witness_many :
  params -> witness:Bignum.t -> added:string list -> Bignum.t
(** {!update_witness} for a batch of insertions in one exponentiation:
    [witness^(Π yᵢ)].  Equals folding {!update_witness} over the list. *)
