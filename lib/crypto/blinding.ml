open Numtheory

type affine = { a : Bignum.t; b : Bignum.t; p : Bignum.t }

let generate_affine rng ~p =
  if Bignum.compare p Bignum.two < 0 then
    invalid_arg "Blinding.generate_affine: modulus too small"
  else
    {
      a = Prng.bignum_range rng Bignum.one p;
      b = Prng.bignum_below rng p;
      p;
    }

let apply_affine { a; b; p } y =
  Obs.Metrics.incr "crypto.blind.affine";
  Modular.add (Modular.mul a y ~m:p) b ~m:p

let apply_affine_many blind ys =
  let { a; b; p } = blind in
  Obs.Metrics.incr ~by:(List.length ys) "crypto.blind.affine";
  List.map (fun y -> Modular.add (Modular.mul a y ~m:p) b ~m:p) ys

type monotone = { scale : Bignum.t; offset : Bignum.t }

let generate_monotone rng ~bits =
  if bits < 1 then invalid_arg "Blinding.generate_monotone: bits < 1"
  else
    {
      scale = Bignum.succ (Prng.bits rng bits);
      offset = Prng.bits rng bits;
    }

let apply_monotone { scale; offset } y =
  Obs.Metrics.incr "crypto.blind.monotone";
  Bignum.add (Bignum.mul scale y) offset

let apply_monotone_many blind ys =
  let { scale; offset } = blind in
  Obs.Metrics.incr ~by:(List.length ys) "crypto.blind.monotone";
  List.map (fun y -> Bignum.add (Bignum.mul scale y) offset) ys
