open Numtheory

type affine = { a : Bignum.t; b : Bignum.t; p : Bignum.t }

let generate_affine rng ~p =
  if Bignum.compare p Bignum.two < 0 then
    invalid_arg "Blinding.generate_affine: modulus too small"
  else
    {
      a = Prng.bignum_range rng Bignum.one p;
      b = Prng.bignum_below rng p;
      p;
    }

let apply_affine { a; b; p } y =
  Obs.Metrics.incr "crypto.blind.affine";
  Modular.add (Modular.mul a y ~m:p) b ~m:p

let apply_affine_many blind ys =
  let { a; b; p } = blind in
  Obs.Metrics.incr ~by:(List.length ys) "crypto.blind.affine";
  match ys with
  | [] | [ _ ] ->
    (* Nothing to amortize for a batch of at most one. *)
    List.map (fun y -> Modular.add (Modular.mul a y ~m:p) b ~m:p) ys
  | _ -> (
    match Modular.mont_ctx_opt p with
    | Some ctx ->
      (* Montgomery batch path: the blinding factor enters the domain
         once, each element pays REDC multiplications instead of a
         Knuth division.  [of_resident] is canonical, so values are
         identical to the classic path. *)
      let a_res = Montgomery.to_resident ctx a in
      List.map
        (fun y ->
          let ay =
            Montgomery.of_resident ctx
              (Montgomery.mul_resident ctx a_res
                 (Montgomery.to_resident ctx y))
          in
          Modular.add ay b ~m:p)
        ys
    | None -> List.map (fun y -> Modular.add (Modular.mul a y ~m:p) b ~m:p) ys)

type monotone = { scale : Bignum.t; offset : Bignum.t }

let generate_monotone rng ~bits =
  if bits < 1 then invalid_arg "Blinding.generate_monotone: bits < 1"
  else
    {
      scale = Bignum.succ (Prng.bits rng bits);
      offset = Prng.bits rng bits;
    }

let apply_monotone { scale; offset } y =
  Obs.Metrics.incr "crypto.blind.monotone";
  Bignum.add (Bignum.mul scale y) offset

let apply_monotone_many blind ys =
  let { scale; offset } = blind in
  Obs.Metrics.incr ~by:(List.length ys) "crypto.blind.monotone";
  List.map (fun y -> Bignum.add (Bignum.mul scale y) offset) ys
