(* RFC 8439 ChaCha20.  State is sixteen 32-bit words kept in native ints
   masked to 32 bits. *)

let key_len = 32
let nonce_len = 12
let mask32 = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let word32_le s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let block ~key ~nonce ~counter =
  if String.length key <> key_len then invalid_arg "Chacha20: bad key length";
  if String.length nonce <> nonce_len then
    invalid_arg "Chacha20: bad nonce length";
  if counter < 0 then invalid_arg "Chacha20: negative counter";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- word32_le key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- word32_le nonce (4 * i)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter_round working 0 4 8 12;
    quarter_round working 1 5 9 13;
    quarter_round working 2 6 10 14;
    quarter_round working 3 7 11 15;
    quarter_round working 0 5 10 15;
    quarter_round working 1 6 11 12;
    quarter_round working 2 7 8 13;
    quarter_round working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = (working.(i) + st.(i)) land mask32 in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  Bytes.to_string out

let encrypt ~key ~nonce ?(counter = 1) data =
  let n = String.length data in
  let out = Bytes.create n in
  let nblocks = (n + 63) / 64 in
  for b = 0 to nblocks - 1 do
    let keystream = block ~key ~nonce ~counter:(counter + b) in
    let offset = 64 * b in
    let len = min 64 (n - offset) in
    for i = 0 to len - 1 do
      Bytes.set out (offset + i)
        (Char.chr (Char.code data.[offset + i] lxor Char.code keystream.[i]))
    done
  done;
  Bytes.to_string out

let nonce_of_string context =
  String.sub (Sha256.digest ("chacha-nonce:" ^ context)) 0 nonce_len
