(** Plain RSA signatures (hash-then-sign), from scratch on the bignum
    substrate.

    Used directly for node-level signing and as the base scheme of
    {!Threshold_rsa}.  The digest is embedded as a quadratic residue
    ([H(m)^2 mod n]) so the threshold scheme's combination algebra (which
    works in the squares subgroup) verifies against the very same
    equation. *)

open Numtheory

type public = private { n : Bignum.t; e : Bignum.t }
type secret = private { d : Bignum.t; public : public }

val generate : Prng.t -> bits:int -> ?e:Bignum.t -> unit -> secret
(** Fresh keypair with modulus of roughly [bits] bits.  The public
    exponent defaults to 65537 and is regenerated-around if not coprime
    with φ(n).  @raise Invalid_argument for [bits < 16]. *)

val public : secret -> public

val digest_to_group : public -> string -> Bignum.t
(** [H(msg)^2 mod n] — the signed representative. *)

val sign : secret -> string -> Bignum.t

val sign_many : secret -> string list -> Bignum.t list
(** Batch signing under the one secret exponent: signatures identical
    to mapping {!sign}, with the exponent's window recoding and
    Montgomery scratch shared across the batch
    ({!Numtheory.Modular.pow_many}). *)

val verify : public -> string -> Bignum.t -> bool

(** {1 Raw trapdoor permutation}

    Textbook RSA on group elements — no hashing, no padding.  Only for
    protocols that need the bare permutation (Yao's millionaire
    protocol encrypts a {e random} element, where rawness is sound). *)

val encrypt_raw : public -> Bignum.t -> Bignum.t
(** [m^e mod n].  @raise Invalid_argument outside [\[0, n)]. *)

val decrypt_raw : secret -> Bignum.t -> Bignum.t
(** [c^d mod n]. *)
