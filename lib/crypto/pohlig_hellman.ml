open Numtheory

type params = { p : Bignum.t; span : Bignum.t }
type key = { e : Bignum.t; d : Bignum.t }

(* [span = p - 3] backs the deterministic encoding; hoisted here so the
   ring-encryption hot loop does not re-derive it per element. *)
let make_params p = { p; span = Bignum.sub p (Bignum.of_int 3) }
let generate_params rng ~bits = make_params (Primes.random_safe_prime rng ~bits)

let params_of_prime p =
  if Bignum.compare p (Bignum.of_int 5) < 0 || Bignum.is_even p then
    invalid_arg "Pohlig_hellman.params_of_prime: need an odd prime >= 5"
  else make_params p

let generate_key rng { p; _ } =
  let phi = Bignum.pred p in
  let rec go () =
    let e = Prng.bignum_range rng (Bignum.of_int 3) (Bignum.pred phi) in
    match Modular.inverse e ~m:phi with
    | Some d -> { e; d }
    | None -> go ()
  in
  go ()

let check_domain p m =
  if Bignum.sign m <= 0 || Bignum.compare m p >= 0 then
    invalid_arg "Pohlig_hellman: message outside [1, p-1]"

let encrypt { p; _ } { e; _ } m =
  check_domain p m;
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow m e ~m:p

let decrypt { p; _ } { d; _ } c =
  check_domain p c;
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow c d ~m:p

let encrypt_many { p; _ } { e; _ } ms =
  List.iter (check_domain p) ms;
  Obs.Metrics.incr ~by:(List.length ms) "crypto.modexp";
  Modular.pow_many ms e ~m:p

let decrypt_many { p; _ } { d; _ } cs =
  List.iter (check_domain p) cs;
  Obs.Metrics.incr ~by:(List.length cs) "crypto.modexp";
  Modular.pow_many cs d ~m:p

let encode { span; _ } payload =
  (* 2 + (H(payload) mod (p - 3)) lies in [2, p-2]; deterministic, so two
     nodes holding equal plaintexts produce the same group element. *)
  let h = Bignum.of_bytes_be (Sha256.digest payload) in
  Bignum.add Bignum.two (Bignum.erem h span)
