open Numtheory

type params = { p : Bignum.t; span : Bignum.t }
type key = { e : Bignum.t; d : Bignum.t }

(* [span = p - 3] backs the deterministic encoding; hoisted here so the
   ring-encryption hot loop does not re-derive it per element. *)
let make_params p = { p; span = Bignum.sub p (Bignum.of_int 3) }
let generate_params rng ~bits = make_params (Primes.random_safe_prime rng ~bits)

let params_of_prime p =
  if Bignum.compare p (Bignum.of_int 5) < 0 || Bignum.is_even p then
    invalid_arg "Pohlig_hellman.params_of_prime: need an odd prime >= 5"
  else make_params p

let generate_key rng { p; _ } =
  let phi = Bignum.pred p in
  let rec go () =
    let e = Prng.bignum_range rng (Bignum.of_int 3) (Bignum.pred phi) in
    match Modular.inverse e ~m:phi with
    | Some d -> { e; d }
    | None -> go ()
  in
  go ()

let check_domain p m =
  if Bignum.sign m <= 0 || Bignum.compare m p >= 0 then
    invalid_arg "Pohlig_hellman: message outside [1, p-1]"

let encrypt { p; _ } { e; _ } m =
  check_domain p m;
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow m e ~m:p

let decrypt { p; _ } { d; _ } c =
  check_domain p c;
  Obs.Metrics.incr "crypto.modexp";
  Modular.pow c d ~m:p

let encrypt_many { p; _ } { e; _ } ms =
  List.iter (check_domain p) ms;
  Obs.Metrics.incr ~by:(List.length ms) "crypto.modexp";
  Modular.pow_many ms e ~m:p

let decrypt_many { p; _ } { d; _ } cs =
  List.iter (check_domain p) cs;
  Obs.Metrics.incr ~by:(List.length cs) "crypto.modexp";
  Modular.pow_many cs d ~m:p

(* ---- Montgomery-resident ciphertexts -----------------------------
   A resident ciphertext pairs the canonical wire value (what goes on
   the network, byte-identical to the scalar path) with its Montgomery
   residue.  Ring passes enter the domain once per protocol run and
   chain every hop's re-encryption in-domain; only the cheap exit
   multiplication is paid per hop to refresh the wire view.  [dom] is
   [None] when the modulus falls outside the Montgomery shape (even or
   single-limb), in which case every operation degrades to the plain
   batch path on [view]. *)

type resident = { view : Bignum.t; dom : Montgomery.resident option }

let view r = r.view

let enter_many { p; _ } ms =
  match Modular.mont_ctx_opt p with
  | Some ctx ->
    Obs.Metrics.incr ~by:(List.length ms) "crypto.mont.resident_enter";
    List.map
      (fun m -> { view = m; dom = Some (Montgomery.to_resident ctx m) })
      ms
  | None -> List.map (fun m -> { view = m; dom = None }) ms

let resync { p; _ } r wire =
  (* After delivery the wire value is authoritative: an adversary may
     have tampered with it in flight.  The honest path compares equal
     and keeps the chained residue; a mismatch re-enters the domain
     from the delivered bytes. *)
  if Bignum.equal r.view wire then r
  else begin
    Obs.Metrics.incr "crypto.mont.resident_resync";
    match Modular.mont_ctx_opt p with
    | Some ctx -> { view = wire; dom = Some (Montgomery.to_resident ctx wire) }
    | None -> { view = wire; dom = None }
  end

(* Shared by the encrypt/decrypt directions: raise every resident to
   [exp], staying in-domain when possible.  [crypto.modexp] advances by
   the batch length exactly as the plain batch path does, so the §3
   closed-form counts are oblivious to which path ran; only the
   [crypto.mont.*] op-mix moves. *)
let pool_min_chunk = 16

let pow_resident_many { p; _ } exp rs =
  List.iter (fun r -> check_domain p r.view) rs;
  Obs.Metrics.incr ~by:(List.length rs) "crypto.modexp";
  match Modular.mont_ctx_opt p with
  | Some ctx when List.for_all (fun r -> r.dom <> None) rs ->
    Obs.Metrics.incr ~by:(List.length rs) "crypto.mont.resident_pow";
    let step plan ctx r =
      match r.dom with
      | Some d ->
        let d = Montgomery.pow_with_resident plan d in
        { view = Montgomery.of_resident ctx d; dom = Some d }
      | None -> assert false
    in
    let pool = Domain_pool.current () in
    if Domain_pool.domains pool > 1 && List.length rs >= 2 * pool_min_chunk
    then
      (* Ring-pass hot path under a reactor pool: contiguous chunks,
         each with a private context and plan (residues are plain
         arrays over the shared modulus, so they cross contexts
         freely).  Views and residues are identical to the inline
         path at any pool width. *)
      Domain_pool.map_list pool ~min_chunk:pool_min_chunk
        (fun chunk ->
          let ctx = Montgomery.create p in
          let plan = Montgomery.powers ctx exp in
          List.map (step plan ctx) chunk)
        rs
    else
      let plan = Montgomery.powers ctx exp in
      List.map (step plan ctx) rs
  | _ ->
    List.map
      (fun v -> { view = v; dom = None })
      (Modular.pow_many (List.map view rs) exp ~m:p)

let encrypt_resident_many params { e; _ } rs = pow_resident_many params e rs
let decrypt_resident_many params { d; _ } rs = pow_resident_many params d rs

let encode { span; _ } payload =
  (* 2 + (H(payload) mod (p - 3)) lies in [2, p-2]; deterministic, so two
     nodes holding equal plaintexts produce the same group element. *)
  let h = Bignum.of_bytes_be (Sha256.digest payload) in
  Bignum.add Bignum.two (Bignum.erem h span)
