(** Scheme-agnostic view of a commutative cipher.

    The SMC protocols (secure set intersection/union, paper §3.1, §3.4)
    only need, per node, a matched encrypt/decrypt pair plus a shared
    deterministic embedding of payloads into the message domain.  This
    module packages Pohlig–Hellman and the XOR pad behind that common
    shape, so protocol code — and the cipher-choice ablation bench — is
    written once. *)

open Numtheory

type keypair = {
  enc : Bignum.t -> Bignum.t;
  dec : Bignum.t -> Bignum.t;
  enc_many : Bignum.t list -> Bignum.t list;
      (** Batch layer under one key: ciphertexts identical to mapping
          [enc], but fixed-exponent plan state is shared across the
          list (Montgomery window recoding and scratch arrays are set
          up once).  Counters advance by the batch length, so §3 cost
          counts are unchanged. *)
  dec_many : Bignum.t list -> Bignum.t list;
      (** Batch counterpart of [dec]; same guarantees as [enc_many]. *)
}
(** One node's matched key, as closures over scheme parameters. *)

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
      (** Draw an independent key for one participant. *)
  encode : string -> Bignum.t;
      (** Shared deterministic payload embedding: equal payloads map to
          equal domain elements across all participants. *)
}

val pohlig_hellman : Numtheory.Prng.t -> Pohlig_hellman.params -> scheme

val xor_pad : Numtheory.Prng.t -> Xor_pad.params -> scheme
