(** Scheme-agnostic view of a commutative cipher.

    The SMC protocols (secure set intersection/union, paper §3.1, §3.4)
    only need, per node, a matched encrypt/decrypt pair plus a shared
    deterministic embedding of payloads into the message domain.  This
    module packages Pohlig–Hellman and the XOR pad behind that common
    shape, so protocol code — and the cipher-choice ablation bench — is
    written once. *)

open Numtheory

type resident
(** A ciphertext as threaded through a ring pass: entered into
    Montgomery-resident form once per protocol run (Pohlig–Hellman) or
    carried as the bare wire value (XOR pad).  Its [view] is always the
    canonical bignum the scalar path would have put on the wire. *)

type keypair = {
  enc : Bignum.t -> Bignum.t;
  dec : Bignum.t -> Bignum.t;
  enc_many : Bignum.t list -> Bignum.t list;
      (** Batch layer under one key: ciphertexts identical to mapping
          [enc], but fixed-exponent plan state is shared across the
          list (Montgomery window recoding and scratch arrays are set
          up once).  Counters advance by the batch length, so §3 cost
          counts are unchanged. *)
  dec_many : Bignum.t list -> Bignum.t list;
      (** Batch counterpart of [dec]; same guarantees as [enc_many]. *)
  enc_res_many : resident list -> resident list;
      (** In-domain batch layer: views are byte-identical to
          [enc_many] on the corresponding wire values, and counters
          advance identically — only the [crypto.mont.*] op-mix moves
          (domain entry/exit is skipped per hop). *)
  dec_res_many : resident list -> resident list;
      (** In-domain counterpart of [dec_many]. *)
}
(** One node's matched key, as closures over scheme parameters. *)

type scheme = {
  name : string;
  fresh_keypair : unit -> keypair;
      (** Draw an independent key for one participant. *)
  encode : string -> Bignum.t;
      (** Shared deterministic payload embedding: equal payloads map to
          equal domain elements across all participants. *)
  enter_many : Bignum.t list -> resident list;
      (** Convert a batch into resident form once, at ring entry. *)
  view : resident -> Bignum.t;
      (** The canonical wire value (always current). *)
  resync : resident -> Bignum.t -> resident;
      (** Reconcile a resident with the value that actually arrived
          after delivery: a no-op when they agree (the honest path), a
          domain re-entry from the delivered bytes when an adversary
          tampered in flight. *)
}

val pohlig_hellman : Numtheory.Prng.t -> Pohlig_hellman.params -> scheme

val xor_pad : Numtheory.Prng.t -> Xor_pad.params -> scheme
