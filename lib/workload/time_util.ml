(* Days-from-civil per Howard Hinnant's algorithms: exact for the whole
   proleptic Gregorian calendar, no tables. *)

let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let epoch_of_civil ~year ~month ~day ~hour ~minute ~second =
  if
    month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 || hour > 23
    || minute < 0 || minute > 59 || second < 0 || second > 60
  then invalid_arg "Time_util.epoch_of_civil: field out of range"
  else begin
    let days = days_from_civil ~year ~month ~day in
    (days * 86400) + (hour * 3600) + (minute * 60) + second
  end

let civil_of_epoch epoch =
  let days = if epoch >= 0 then epoch / 86400 else (epoch - 86399) / 86400 in
  let secs = epoch - (days * 86400) in
  let year, month, day = civil_from_days days in
  (year, month, day, secs / 3600, secs / 60 mod 60, secs mod 60)

let parse_paper s =
  match String.split_on_char '/' s with
  | [ hms; mm; dd; yyyy ] -> (
    match String.split_on_char ':' hms with
    | [ h; m; sec ] -> (
      match
        ( int_of_string_opt h, int_of_string_opt m, int_of_string_opt sec,
          int_of_string_opt mm, int_of_string_opt dd, int_of_string_opt yyyy )
      with
      | Some hour, Some minute, Some second, Some month, Some day, Some year ->
        let year = if year < 100 then 2000 + year else year in
        epoch_of_civil ~year ~month ~day ~hour ~minute ~second
      | _ -> invalid_arg "Time_util.parse_paper: non-numeric field")
    | _ -> invalid_arg "Time_util.parse_paper: bad time-of-day")
  | _ -> invalid_arg "Time_util.parse_paper: bad shape"

let format_paper epoch =
  let year, month, day, hour, minute, second = civil_of_epoch epoch in
  Printf.sprintf "%02d:%02d:%02d/%02d/%02d/%04d" hour minute second month day
    year
