(** The paper's worked example: Table 1's five-row global event log, the
    Tables 2–5 fragment layout, and Table 6's tickets. *)

val attributes : Dla.Attribute.t list
(** Table 1's columns in order: time, id, protocl, tid, C1, C2, C3. *)

val rows : (Dla.Attribute.t * Dla.Value.t) list list
(** The five Table 1 rows (glsn's come from the cluster allocator). *)

val ticket_assignment : (string * int list) list
(** Table 6: which ticket logs which rows, as [(ticket id, row indexes)]:
    T1 → rows 0 and 2, T2 → rows 1 and 3, T3 → row 4. *)

val build :
  ?seed:int -> ?net:Net.Network.t -> unit -> Dla.Cluster.t * Dla.Glsn.t list
(** A 4-node cluster with the paper's partition (Tables 2–5), the five
    rows submitted under the Table 6 tickets.  Returns the assigned
    glsn's in row order.  [net] substitutes a pre-built network (e.g. a
    {!Spec.Schedule} one) for the default clean network. *)

val build_centralized :
  ?net:Net.Network.t -> unit -> Dla.Centralized.t * Dla.Glsn.t list
(** The same five rows in the Figure 1 centralized baseline. *)

val render_global_table : Dla.Cluster.t -> Dla.Glsn.t list -> string
(** Re-render Table 1 from cluster state (requires reassembly —
    deliberately a whole-cluster operation). *)

val render_fragment_tables : Dla.Cluster.t -> string
(** Re-render Tables 2–5: each node's own view. *)

val render_acl_table : Dla.Cluster.t -> string
(** Re-render Table 6 from any node's access-control table. *)
