open Numtheory
open Dla

type config = {
  hosts : int;
  background_events : int;
  probes_per_host : int;
  local_alert_threshold : int;
  seed : int;
}

let default_config =
  {
    hosts = 5;
    background_events = 60;
    probes_per_host = 3;
    local_alert_threshold = 10;
    seed = 13;
  }

type ground_truth = {
  attacker : string;
  attacker_total_events : int;
  background_sources : string list;
  max_background_per_source : int;
}

let d = Attribute.defined
let u = Attribute.undefined

let attributes = [ d "time"; d "id"; d "ip"; d "protocl"; u 1 ]

let attacker_id = "evil7"

let base_time =
  Time_util.epoch_of_civil ~year:2002 ~month:5 ~day:13 ~hour:2 ~minute:0
    ~second:0

let background_source rng =
  Printf.sprintf "host%02d" (Prng.int rng 24)

let event ~time ~source ~target ~protocol ~port =
  ( [ (d "time", Value.Time time);
      (d "id", Value.Str source);
      (d "ip", Value.Str (Printf.sprintf "10.0.0.%d" target));
      (d "protocl", Value.Str protocol);
      (u 1, Value.Int port)
    ],
    Net.Node_id.User target )

let events config =
  if config.hosts < 1 then invalid_arg "Intrusion.events: hosts < 1";
  let rng = Prng.create ~seed:config.seed in
  let clock = ref base_time in
  let background =
    List.init config.background_events (fun _ ->
        clock := !clock + 1 + Prng.int rng 120;
        event ~time:!clock
          ~source:(background_source rng)
          ~target:(Prng.int rng config.hosts)
          ~protocol:(if Prng.bool rng then "TCP" else "UDP")
          ~port:(1 + Prng.int rng 1024))
  in
  (* The low-and-slow scan: a few probes per host, spread out in time. *)
  let scan =
    List.concat
      (List.init config.hosts (fun host ->
           List.init config.probes_per_host (fun probe ->
               clock := !clock + 200 + Prng.int rng 400;
               event ~time:!clock ~source:attacker_id ~target:host
                 ~protocol:"TCP"
                 ~port:(22 + (probe * 1000)))))
  in
  (* Interleave deterministically by timestamp. *)
  List.sort
    (fun (a, _) (b, _) ->
      match (List.assoc_opt (d "time") a, List.assoc_opt (d "time") b) with
      | Some ta, Some tb -> Value.compare ta tb
      | _ -> 0)
    (background @ scan)

let ground_truth_of config stream =
  let count_by source =
    List.length
      (List.filter
         (fun (attrs, _) ->
           List.assoc_opt (d "id") attrs = Some (Value.Str source))
         stream)
  in
  let sources =
    List.sort_uniq compare
      (List.filter_map
         (fun (attrs, _) ->
           match List.assoc_opt (d "id") attrs with
           | Some (Value.Str s) when s <> attacker_id -> Some s
           | Some _ | None -> None)
         stream)
  in
  {
    attacker = attacker_id;
    attacker_total_events = config.hosts * config.probes_per_host;
    background_sources = sources;
    max_background_per_source =
      List.fold_left (fun acc s -> max acc (count_by s)) 0 sources;
  }

let populate cluster config =
  let stream = events config in
  let tickets = Hashtbl.create 8 in
  let ticket_for origin host =
    match Hashtbl.find_opt tickets host with
    | Some t -> t
    | None ->
      let t =
        Cluster.issue_ticket cluster
          ~id:(Printf.sprintf "T-ids%d" host)
          ~principal:origin
          ~rights:[ Ticket.Read; Ticket.Write ]
          ~ttl:86400
      in
      Hashtbl.add tickets host t;
      t
  in
  let glsns =
    List.map
      (fun (attrs, origin) ->
        let host =
          match origin with Net.Node_id.User i -> i | _ -> 0
        in
        match
          Cluster.to_result
            (Cluster.submit cluster
               ~ticket:(ticket_for origin host)
               ~origin ~attributes:attrs)
        with
        | Ok glsn -> glsn
        | Error e -> invalid_arg ("Intrusion.populate: " ^ e))
      stream
  in
  (glsns, ground_truth_of config stream)

let per_host_counts config ~source =
  let stream = events config in
  List.init config.hosts (fun host ->
      ( host,
        List.length
          (List.filter
             (fun (attrs, origin) ->
               origin = Net.Node_id.User host
               && List.assoc_opt (d "id") attrs = Some (Value.Str source))
             stream) ))
