(** Distributed intrusion-detection workload (paper §1/§4.2 motivation:
    "distributed security breaching is usually an aggregated effect of
    distributed events, each of which alone may appear to be
    harmless").

    The generator produces background connection events across several
    monitored hosts and embeds a low-and-slow port scan: the attacker
    touches each host only a handful of times — under any single host's
    alert threshold — but the cluster-wide aggregate count betrays it.
    Detection is an auditing query plus a secure sum, so no host reveals
    its raw connection log. *)

type config = {
  hosts : int;  (** monitored application nodes *)
  background_events : int;
  probes_per_host : int;  (** attacker touches per host (low & slow) *)
  local_alert_threshold : int;
      (** per-host count a conventional IDS would need to fire *)
  seed : int;
}

val default_config : config

type ground_truth = {
  attacker : string;  (** source id of the scan, e.g. "evil7" *)
  attacker_total_events : int;
  background_sources : string list;
  max_background_per_source : int;
}

val attributes : Dla.Attribute.t list
(** time, id (source), ip (target host), protocl, C1 (port). *)

val events : config -> ((Dla.Attribute.t * Dla.Value.t) list * Net.Node_id.t) list

val populate : Dla.Cluster.t -> config -> Dla.Glsn.t list * ground_truth

val per_host_counts : config -> source:string -> (int * int) list
(** [(host, events by source at that host)] — shows the scan stays under
    the local threshold on every single host. *)
