open Numtheory
open Dla

type config = { branches : int; patrons : int; events : int; seed : int }

let default_config = { branches = 3; patrons = 40; events = 120; seed = 23 }

type ground_truth = {
  checkouts : int;
  searches : int;
  renewals : int;
  per_branch : (int * int) list;
  heaviest_patron : string;
  heaviest_patron_events : int;
}

let d = Attribute.defined
let u = Attribute.undefined

let attributes = [ d "time"; d "id"; d "protocl"; d "tid"; u 4; u 1 ]

let services = [| "checkout"; "search"; "renewal" |]
let item_classes = [| "fiction"; "reference"; "periodical"; "media" |]

let base_time =
  Time_util.epoch_of_civil ~year:2002 ~month:6 ~day:1 ~hour:9 ~minute:0
    ~second:0

let events config =
  if config.branches < 1 || config.patrons < 1 then
    invalid_arg "Library.events: need branches and patrons";
  let rng = Prng.create ~seed:config.seed in
  let clock = ref base_time in
  List.init config.events (fun _ ->
      clock := !clock + 1 + Prng.int rng 600;
      let branch = Prng.int rng config.branches in
      (* A zipf-ish skew so one patron plausibly stands out. *)
      let patron =
        let r = Prng.int rng 100 in
        if r < 25 then 0 else Prng.int rng config.patrons
      in
      let service = services.(Prng.int rng (Array.length services)) in
      let item = item_classes.(Prng.int rng (Array.length item_classes)) in
      ( [ (d "time", Value.Time !clock);
          (d "id", Value.Str (Printf.sprintf "branch%d" branch));
          (d "protocl", Value.Str service);
          (d "tid", Value.Str item);
          (u 4, Value.Str (Printf.sprintf "patron%03d" patron));
          (u 1, Value.Int (1 + Prng.int rng 50))
        ],
        Net.Node_id.User branch ))

let ground_truth_of config stream =
  let count_where pred = List.length (List.filter pred stream) in
  let service_is name (attrs, _) =
    List.assoc_opt (d "protocl") attrs = Some (Value.Str name)
  in
  let per_branch =
    List.init config.branches (fun b ->
        (b, count_where (fun (_, origin) -> origin = Net.Node_id.User b)))
  in
  let patron_count p =
    count_where (fun (attrs, _) ->
        List.assoc_opt (u 4) attrs = Some (Value.Str p))
  in
  let patrons =
    List.sort_uniq compare
      (List.filter_map
         (fun (attrs, _) ->
           match List.assoc_opt (u 4) attrs with
           | Some (Value.Str p) -> Some p
           | Some _ | None -> None)
         stream)
  in
  let heaviest =
    List.fold_left
      (fun (best, best_count) p ->
        let c = patron_count p in
        if c > best_count then (p, c) else (best, best_count))
      ("", 0) patrons
  in
  {
    checkouts = count_where (service_is "checkout");
    searches = count_where (service_is "search");
    renewals = count_where (service_is "renewal");
    per_branch;
    heaviest_patron = fst heaviest;
    heaviest_patron_events = snd heaviest;
  }

let populate cluster config =
  let stream = events config in
  let tickets = Hashtbl.create 8 in
  let ticket_for origin branch =
    match Hashtbl.find_opt tickets branch with
    | Some t -> t
    | None ->
      let t =
        Cluster.issue_ticket cluster
          ~id:(Printf.sprintf "T-branch%d" branch)
          ~principal:origin
          ~rights:[ Ticket.Read; Ticket.Write ]
          ~ttl:86400
      in
      Hashtbl.add tickets branch t;
      t
  in
  let glsns =
    List.map
      (fun (attrs, origin) ->
        let branch = match origin with Net.Node_id.User b -> b | _ -> 0 in
        match
          Cluster.to_result
            (Cluster.submit cluster
               ~ticket:(ticket_for origin branch)
               ~origin ~attributes:attrs)
        with
        | Ok glsn -> glsn
        | Error e -> invalid_arg ("Library.populate: " ^ e))
      stream
  in
  (glsns, ground_truth_of config stream)
