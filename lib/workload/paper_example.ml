open Dla

let d = Attribute.defined
let u = Attribute.undefined

let attributes =
  [ d "time"; d "id"; d "protocl"; d "tid"; u 1; u 2; u 3 ]

let row ~time ~id ~protocl ~tid ~c1 ~c2 ~c3 =
  [ (d "time", Value.Time (Time_util.parse_paper time));
    (d "id", Value.Str id);
    (d "protocl", Value.Str protocl);
    (d "tid", Value.Str tid);
    (u 1, Value.Int c1);
    (u 2, Value.money_of_float c2);
    (u 3, Value.Str c3)
  ]

let rows =
  [ row ~time:"20:18:35/05/12/2002" ~id:"U1" ~protocl:"UDP" ~tid:"T1100265"
      ~c1:20 ~c2:23.45 ~c3:"signature";
    row ~time:"20:20:35/05/12/2002" ~id:"U2" ~protocl:"UDP" ~tid:"T1100265"
      ~c1:34 ~c2:345.11 ~c3:"evidence.";
    row ~time:"20:23:35/05/12/2002" ~id:"U1" ~protocl:"UDP" ~tid:"T1100267"
      ~c1:45 ~c2:235.00 ~c3:"bank";
    row ~time:"20:23:38/05/12/2002" ~id:"U2" ~protocl:"TCP" ~tid:"T1100265"
      ~c1:18 ~c2:45.02 ~c3:"salary";
    row ~time:"20:25:35/05/12/2002" ~id:"U3" ~protocl:"TCP" ~tid:"T1100267"
      ~c1:53 ~c2:678.75 ~c3:"account"
  ]

let ticket_assignment = [ ("T1", [ 0; 2 ]); ("T2", [ 1; 3 ]); ("T3", [ 4 ]) ]

let origin_of_row row =
  match List.assoc_opt (d "id") row with
  | Some (Value.Str "U1") -> Net.Node_id.User 1
  | Some (Value.Str "U2") -> Net.Node_id.User 2
  | Some (Value.Str "U3") -> Net.Node_id.User 3
  | Some _ | None -> Net.Node_id.User 0

let ticket_of_row index =
  match
    List.find_opt (fun (_, indexes) -> List.mem index indexes) ticket_assignment
  with
  | Some (id, _) -> id
  | None -> invalid_arg "Paper_example: row without ticket"

let build ?(seed = 0) ?net () =
  let cluster = Cluster.create ~seed ?net Fragmentation.paper_partition in
  let tickets =
    List.map
      (fun (ticket_id, indexes) ->
        let origin = origin_of_row (List.nth rows (List.hd indexes)) in
        ( ticket_id,
          Cluster.issue_ticket cluster ~id:ticket_id ~principal:origin
            ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:3600 ))
      ticket_assignment
  in
  let glsns =
    List.mapi
      (fun index row ->
        let ticket = List.assoc (ticket_of_row index) tickets in
        match
          Cluster.to_result
            (Cluster.submit cluster ~ticket ~origin:(origin_of_row row)
               ~attributes:row)
        with
        | Ok glsn -> glsn
        | Error e -> invalid_arg ("Paper_example.build: " ^ e))
      rows
  in
  (cluster, glsns)

let build_centralized ?net () =
  let central = Centralized.create ?net ~auditor:Net.Node_id.Auditor () in
  let glsns =
    List.map
      (fun row ->
        Centralized.submit central ~origin:(origin_of_row row) ~attributes:row)
      rows
  in
  (central, glsns)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_value attr value =
  match (attr, value) with
  | _, Value.Time t -> Time_util.format_paper t
  | _, v -> Value.to_string v

let render_table ~title ~columns ~rows_data =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) rows_data)
      columns
  in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun cell width -> Printf.sprintf "%-*s" width cell) cells widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (render_row columns ^ "\n");
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows_data;
  Buffer.contents buf

let render_global_table cluster glsns =
  let columns =
    "glsn" :: List.map Attribute.to_string attributes
  in
  let rows_data =
    List.map
      (fun glsn ->
        match Cluster.record_of cluster glsn with
        | None -> [ Glsn.to_string glsn ]
        | Some record ->
          Glsn.to_string glsn
          :: List.map
               (fun attr ->
                 match Log_record.find record attr with
                 | Some v -> render_value attr v
                 | None -> "")
               attributes)
      glsns
  in
  render_table ~title:"TABLE 1: GLOBAL EVENT LOG" ~columns ~rows_data

let render_fragment_tables cluster =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i node ->
      let store = Cluster.store_of cluster node in
      let supported =
        List.sort Attribute.compare
          (Attribute.Set.elements (Storage.supported store))
      in
      let columns = "glsn" :: List.map Attribute.to_string supported in
      let rows_data =
        List.map
          (fun glsn ->
            let fragment =
              Option.value ~default:[] (Storage.fragment_of store glsn)
            in
            Glsn.to_string glsn
            :: List.map
                 (fun attr ->
                   match List.assoc_opt attr fragment with
                   | Some v -> render_value attr v
                   | None -> "")
                 supported)
          (Storage.glsns store)
      in
      Buffer.add_string buf
        (render_table
           ~title:
             (Printf.sprintf "TABLE %d: EVENT LOG FRAGMENTS STORED IN %s"
                (i + 2)
                (Net.Node_id.to_string node))
           ~columns ~rows_data);
      Buffer.add_char buf '\n')
    (Cluster.nodes cluster);
  Buffer.contents buf

let render_acl_table cluster =
  let store = Cluster.store_of cluster (List.hd (Cluster.nodes cluster)) in
  let rows_data =
    List.map
      (fun (ticket_id, glsns) ->
        [ ticket_id;
          "W/R";
          String.concat ", " (List.map Glsn.to_string glsns)
        ])
      (Access_control.entries (Storage.acl store))
  in
  render_table ~title:"TABLE 6: ACCESS CONTROL TABLE"
    ~columns:[ "Ticket ID"; "Type"; "glsn" ] ~rows_data
