(** Library-circulation workload (paper §1, ref [7]: Camp–Tygar,
    "Providing Auditing While Protecting Privacy").

    The original secret-counting scenario: a library consortium must
    audit service statistics — checkouts per branch, uses of particular
    services, records touched per search — "without having to unveil the
    privacy of library patrons".  Events carry a patron id (C4), branch,
    service kind and item class; the auditor works through secret counts
    and sums only. *)

type config = {
  branches : int;
  patrons : int;
  events : int;
  seed : int;
}

val default_config : config

type ground_truth = {
  checkouts : int;
  searches : int;
  renewals : int;
  per_branch : (int * int) list;  (** branch index to event count *)
  heaviest_patron : string;  (** most active patron id *)
  heaviest_patron_events : int;
}

val attributes : Dla.Attribute.t list
(** time, id (branch), protocl (service kind), tid (item class),
    C4 (patron id), C1 (records touched). *)

val events :
  config -> ((Dla.Attribute.t * Dla.Value.t) list * Net.Node_id.t) list

val populate : Dla.Cluster.t -> config -> Dla.Glsn.t list * ground_truth
