open Numtheory
open Dla

type config = {
  users : int;
  transactions : int;
  seed : int;
  max_amount_cents : int;
  protocols : string list;
}

let default_config =
  {
    users = 4;
    transactions = 25;
    seed = 7;
    max_amount_cents = 100_000;
    protocols = [ "TCP"; "UDP" ];
  }

type ground_truth = {
  total_volume_cents : int;
  per_user_events : (int * int) list;
  transaction_ids : string list;
}

let d = Attribute.defined
let u = Attribute.undefined

let attributes = [ d "time"; d "id"; d "protocl"; d "tid"; u 1; u 2; u 3 ]

let base_time =
  Time_util.epoch_of_civil ~year:2002 ~month:5 ~day:12 ~hour:20 ~minute:0
    ~second:0

let events config =
  if config.users < 1 then invalid_arg "Ecommerce.events: users < 1";
  if config.protocols = [] then invalid_arg "Ecommerce.events: no protocols";
  let rng = Prng.create ~seed:config.seed in
  let pick_protocol () =
    List.nth config.protocols (Prng.int rng (List.length config.protocols))
  in
  let clock = ref base_time in
  List.concat
    (List.init config.transactions (fun txn ->
         let buyer = Prng.int rng config.users in
         let seller = Prng.int rng config.users in
         let tid = Printf.sprintf "T%07d" (1100265 + txn) in
         let amount = 1 + Prng.int rng config.max_amount_cents in
         let units = 1 + Prng.int rng 100 in
         clock := !clock + 1 + Prng.int rng 300;
         let order_time = !clock in
         clock := !clock + 1 + Prng.int rng 60;
         let payment_time = !clock in
         let order =
           ( [ (d "time", Value.Time order_time);
               (d "id", Value.Str (Printf.sprintf "U%d" buyer));
               (d "protocl", Value.Str (pick_protocol ()));
               (d "tid", Value.Str tid);
               (u 1, Value.Int units);
               (u 2, Value.Money amount);
               (u 3, Value.Str "order")
             ],
             Net.Node_id.User buyer )
         in
         let payment =
           ( [ (d "time", Value.Time payment_time);
               (d "id", Value.Str (Printf.sprintf "U%d" seller));
               (d "protocl", Value.Str (pick_protocol ()));
               (d "tid", Value.Str tid);
               (u 1, Value.Int units);
               (u 2, Value.Money amount);
               (u 3, Value.Str "payment")
             ],
             Net.Node_id.User seller )
         in
         [ order; payment ]))

let ground_truth_of config stream =
  let total =
    List.fold_left
      (fun acc (attrs, _) ->
        match List.assoc_opt (u 2) attrs with
        | Some (Value.Money cents) -> acc + cents
        | Some _ | None -> acc)
      0 stream
  in
  let counts = Array.make config.users 0 in
  List.iter
    (fun (_, origin) ->
      match origin with
      | Net.Node_id.User i when i < config.users ->
        counts.(i) <- counts.(i) + 1
      | _ -> ())
    stream;
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun (attrs, _) ->
           match List.assoc_opt (d "tid") attrs with
           | Some (Value.Str tid) -> Some tid
           | Some _ | None -> None)
         stream)
  in
  {
    total_volume_cents = total;
    per_user_events = Array.to_list (Array.mapi (fun i c -> (i, c)) counts);
    transaction_ids = tids;
  }

let populate cluster config =
  let stream = events config in
  let tickets =
    List.init config.users (fun i ->
        ( Net.Node_id.User i,
          Cluster.issue_ticket cluster
            ~id:(Printf.sprintf "T-user%d" i)
            ~principal:(Net.Node_id.User i)
            ~rights:[ Ticket.Read; Ticket.Write ]
            ~ttl:86400 ))
  in
  let glsns =
    List.map
      (fun (attrs, origin) ->
        let ticket =
          snd (List.find (fun (n, _) -> Net.Node_id.equal n origin) tickets)
        in
        match
          Cluster.to_result
            (Cluster.submit cluster ~ticket ~origin ~attributes:attrs)
        with
        | Ok glsn -> glsn
        | Error e -> invalid_arg ("Ecommerce.populate: " ^ e))
      stream
  in
  (glsns, ground_truth_of config stream)

let populate_centralized central config =
  let stream = events config in
  let glsns =
    List.map
      (fun (attrs, origin) ->
        Centralized.submit central ~origin ~attributes:attrs)
      stream
  in
  (glsns, ground_truth_of config stream)
