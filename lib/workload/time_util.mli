(** Civil-time ↔ epoch-seconds conversion (no [Unix] dependency).

    The paper's Table 1 timestamps read "20:18:35/05/12/2002"
    (hh:mm:ss/mm/dd/yyyy); log records store epoch seconds
    ([Value.Time]) so that range predicates work, and render back in
    the paper's format. *)

val epoch_of_civil :
  year:int -> month:int -> day:int -> hour:int -> minute:int -> second:int -> int
(** Proleptic-Gregorian civil time (UTC) to Unix epoch seconds.
    @raise Invalid_argument on out-of-range fields. *)

val civil_of_epoch : int -> int * int * int * int * int * int
(** Inverse: [(year, month, day, hour, minute, second)]. *)

val parse_paper : string -> int
(** Parse "hh:mm:ss/mm/dd/yyyy" (2-digit years mean 20yy).
    @raise Invalid_argument on malformed input. *)

val format_paper : int -> string
(** Render epoch seconds in the paper's format with a 4-digit year. *)
