(** Synthetic e-commerce transaction workload.

    The paper motivates DLA with "auditing of transactions from multiple
    independent sources" and non-repudiation of business transactions
    (§2).  This generator produces multi-event transactions — an order
    and its payment, logged by different application nodes — over the
    paper's attribute schema, parameterized so benches can sweep volume
    and shape. *)

type config = {
  users : int;  (** application nodes u_0 … u_{users-1} *)
  transactions : int;
  seed : int;
  max_amount_cents : int;
  protocols : string list;  (** drawn uniformly, default TCP/UDP *)
}

val default_config : config

type ground_truth = {
  total_volume_cents : int;  (** Σ amounts — target of the secure sum *)
  per_user_events : (int * int) list;  (** user index to event count *)
  transaction_ids : string list;
}

val attributes : Dla.Attribute.t list
(** The schema used: time, id, protocl, tid, C1 (units), C2 (amount),
    C3 (memo). *)

val events : config -> ((Dla.Attribute.t * Dla.Value.t) list * Net.Node_id.t) list
(** The raw event stream as [(attributes, origin)], in time order. *)

val populate : Dla.Cluster.t -> config -> Dla.Glsn.t list * ground_truth
(** Issue one W/R ticket per user and submit all events. *)

val populate_centralized :
  Dla.Centralized.t -> config -> Dla.Glsn.t list * ground_truth
