open Numtheory

let equality_via_ttp ~net ~ttp ~left:(lnode, lval) ~right:(rnode, rval) =
  Smc.Proto_util.span net "spec.leaky-equality" (fun () ->
      Net.Network.send_exn net ~src:lnode ~dst:ttp ~label:"leaky:submit"
        ~bytes:(Smc.Proto_util.bignum_wire_size lval);
      (* Honest labeling of a dishonest protocol: the TTP really does
         see the raw value. *)
      Smc.Proto_util.observe net ~node:ttp ~sensitivity:Net.Ledger.Plaintext
        ~tag:"leaky:submit" (Bignum.to_string lval);
      Net.Network.send_exn net ~src:rnode ~dst:ttp ~label:"leaky:submit"
        ~bytes:(Smc.Proto_util.bignum_wire_size rval);
      (* Mislabeled: the value traveled unblinded but is recorded as if
         it had been transformed — the verbatim-secret rule must catch
         this one. *)
      Smc.Proto_util.observe net ~node:ttp ~sensitivity:Net.Ledger.Blinded
        ~tag:"leaky:submit" (Bignum.to_string rval);
      Net.Network.round ~label:"equality" net;
      let verdict = Bignum.equal lval rval in
      Net.Network.send_exn net ~src:ttp ~dst:lnode ~label:"leaky:verdict"
        ~bytes:1;
      Net.Network.send_exn net ~src:ttp ~dst:rnode ~label:"leaky:verdict"
        ~bytes:1;
      Net.Network.round ~label:"equality" net;
      verdict)

let checkpoint_with_glsn ~net ~publisher ~verifier ~digest ~glsn =
  Smc.Proto_util.span net "spec.leaky-checkpoint" (fun () ->
      Net.Network.send_exn net ~src:publisher ~dst:verifier
        ~label:"leaky:checkpoint" ~bytes:(String.length digest + 16);
      (* A "helpful" publisher annotating the head with which record
         triggered it: the value is no longer a bare 64-hex digest, so
         the ckpt: event class must reject it. *)
      Smc.Proto_util.observe net ~node:verifier
        ~sensitivity:Net.Ledger.Metadata ~tag:"ckpt:publish"
        (Printf.sprintf "%s|glsn=%s" digest glsn);
      Net.Network.round ~label:"continuous" net)
