open Numtheory
module String_set = Set.Make (String)

let intersection = function
  | [] -> []
  | first :: rest ->
    String_set.elements
      (List.fold_left
         (fun acc s -> String_set.inter acc (String_set.of_list s))
         (String_set.of_list first) rest)

let union sets =
  String_set.elements
    (List.fold_left
       (fun acc s -> String_set.union acc (String_set.of_list s))
       String_set.empty sets)

let equality = Bignum.equal

let sum ~p values =
  List.fold_left (fun acc v -> Modular.add acc v ~m:p) Bignum.zero values

let weighted_sum ~p ~weights parties =
  let weight_of node =
    match List.find_opt (fun (n, _) -> Net.Node_id.equal n node) weights with
    | Some (_, w) -> Modular.normalize w ~m:p
    | None -> Bignum.one
  in
  List.fold_left
    (fun acc (node, v) ->
      Modular.add acc (Modular.mul (weight_of node) v ~m:p) ~m:p)
    Bignum.zero parties

let ranking values =
  if values = [] then failwith "Oracle.ranking: no parties";
  (* Same conventions as Smc.Ranking.verdict_of_values: stable sort,
     rank 1 = smallest, ties share the lower rank. *)
  let sorted = List.sort (fun (_, a) (_, b) -> Bignum.compare a b) values in
  let ranks =
    let rec go idx prev acc = function
      | [] -> List.rev acc
      | (node, v) :: rest ->
        let rank =
          match prev with
          | Some (pv, prank) when Bignum.equal pv v -> prank
          | _ -> idx
        in
        go (idx + 1) (Some (v, rank)) ((node, rank) :: acc) rest
    in
    go 1 None [] sorted
  in
  {
    Smc.Ranking.max_holder = fst (List.nth sorted (List.length sorted - 1));
    min_holder = fst (List.hd sorted);
    ranks;
  }

let majority votes =
  let count v =
    List.length (List.filter (fun (_, v') -> v' = v) votes)
  in
  let approvals = count Smc.Majority.Approve in
  let rejections = count Smc.Majority.Reject in
  let verdict =
    if approvals > rejections then Some Smc.Majority.Approve
    else if rejections > approvals then Some Smc.Majority.Reject
    else None
  in
  { Smc.Majority.verdict; approvals; rejections; flagged = [] }
