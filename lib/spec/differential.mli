(** Differential conformance checks: real protocol vs. cleartext oracle.

    One {!type:case} packages a protocol execution, the {!Oracle} answer
    for the same inputs, and the {!View_auditor} specs that describe
    who holds what.  {!check} runs the protocol on a {!Schedule} with a
    {!Transcript} recorder installed and fails if either the answers
    diverge or any recorded view is unsimulatable.

    On failure the full counterexample (protocol, schedule, printable
    input, expected/got or the violation list) is appended to
    {!counterexample_path} so CI can publish it as an artifact and a
    developer can replay it under the same seeds. *)

type 'r case = {
  protocol : string;  (** e.g. ["intersection"]; goes in failure reports *)
  input : string;  (** printable form of the generated inputs *)
  run : Net.Network.t -> 'r;
  oracle : 'r;
  equal : 'r -> 'r -> bool;
  show : 'r -> string;
  specs : 'r -> View_auditor.spec list;
      (** built from the protocol's answer because some authorized
          outputs (e.g. the announced max-holder) only exist once the
          result is known *)
}

val counterexample_path : unit -> string
(** [$SPEC_COUNTEREXAMPLE_OUT] if set and non-empty, else
    ["spec-counterexample.txt"] in the working directory. *)

val check : schedule:Schedule.t -> 'r case -> (unit, string) result
(** [Error msg] carries the same text that was appended to the
    counterexample file. *)
