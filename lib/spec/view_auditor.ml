module String_set = Set.Make (String)

type role = Participant | Blind_ttp

type spec = {
  node : Net.Node_id.t;
  role : role;
  secrets : string list;
  allowed_outputs : string list;
}

type reason =
  | Unknown_observer
  | Foreign_secret
  | Plaintext_at_ttp
  | Unauthorized_plaintext
  | Unauthorized_aggregate
  | Verifier_leak
  | Checkpoint_leak

type violation = { event : Transcript.event; reason : reason }

let reason_to_string = function
  | Unknown_observer -> "observation by a node outside the protocol spec"
  | Foreign_secret -> "foreign secret visible verbatim"
  | Plaintext_at_ttp -> "plaintext in a blind role's view"
  | Unauthorized_plaintext ->
    "plaintext outside own secrets and authorized outputs"
  | Unauthorized_aggregate -> "aggregate output the spec does not authorize"
  | Verifier_leak ->
    "verification channel carried something other than a commitment digest"
  | Checkpoint_leak ->
    "checkpoint publication carried something other than a chain digest"

let violation_to_string { event; reason } =
  Printf.sprintf "%s saw %S (%s, tag %s, phase %s): %s"
    (Net.Node_id.to_string event.Smc.Proto_util.node)
    event.Smc.Proto_util.value
    (Net.Ledger.sensitivity_to_string event.Smc.Proto_util.sensitivity)
    event.Smc.Proto_util.tag
    (match event.Smc.Proto_util.phase with
    | [] -> "-"
    | path -> String.concat "/" path)
    (reason_to_string reason)

let pp_violation fmt v = Format.pp_print_string fmt (violation_to_string v)

(* The Byzantine round guard's cross-checks ride the transcript as
   "byz:"-tagged events.  The defense must not become a side channel:
   a verification event may only ever be a Metadata observation of a
   SHA-256 commitment (64 lowercase hex) — anything else is the
   verifier itself leaking. *)
let is_commitment_digest v =
  String.length v = 64
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       v

let verification_tag tag =
  String.length tag >= 4 && String.equal (String.sub tag 0 4) "byz:"

(* The continuous engine's checkpoint heads ride the transcript as
   "ckpt:"-tagged events, under the same discipline: a published
   checkpoint is Metadata and exactly one 64-hex chain digest — a
   glsn, a count, a record value riding along is the publisher leaking. *)
let checkpoint_tag tag =
  String.length tag >= 5 && String.equal (String.sub tag 0 5) "ckpt:"

let audit ~specs transcript =
  let all_secrets =
    List.fold_left
      (fun acc s -> String_set.union acc (String_set.of_list s.secrets))
      String_set.empty specs
  in
  let spec_of node =
    List.find_opt (fun s -> Net.Node_id.equal s.node node) specs
  in
  List.filter_map
    (fun (e : Transcript.event) ->
      let fail reason = Some { event = e; reason } in
      match spec_of e.node with
      | None -> fail Unknown_observer
      | Some s when checkpoint_tag e.tag ->
        if
          (match e.sensitivity with Net.Ledger.Metadata -> false | _ -> true)
          || not (is_commitment_digest e.value)
        then fail Checkpoint_leak
        else
          let own = String_set.of_list s.secrets in
          let allowed = String_set.of_list s.allowed_outputs in
          let foreign =
            String_set.diff (String_set.diff all_secrets own) allowed
          in
          if String_set.mem e.value foreign then fail Foreign_secret
          else None
      | Some s when verification_tag e.tag ->
        if
          (match e.sensitivity with Net.Ledger.Metadata -> false | _ -> true)
          || not (is_commitment_digest e.value)
        then fail Verifier_leak
        else
          (* even a digest-shaped value must not be a secret verbatim *)
          let own = String_set.of_list s.secrets in
          let allowed = String_set.of_list s.allowed_outputs in
          let foreign =
            String_set.diff (String_set.diff all_secrets own) allowed
          in
          if String_set.mem e.value foreign then fail Foreign_secret
          else None
      | Some s ->
        let own = String_set.of_list s.secrets in
        let allowed = String_set.of_list s.allowed_outputs in
        let by_sensitivity =
          match e.sensitivity with
          | Net.Ledger.Plaintext -> (
            match s.role with
            | Blind_ttp -> Some Plaintext_at_ttp
            | Participant ->
              if
                String_set.mem e.value own || String_set.mem e.value allowed
              then None
              else Some Unauthorized_plaintext)
          | Net.Ledger.Aggregate ->
            let ok =
              match s.role with
              | Blind_ttp -> String_set.mem e.value allowed
              | Participant ->
                String_set.mem e.value own || String_set.mem e.value allowed
            in
            if ok then None else Some Unauthorized_aggregate
          | Net.Ledger.Ciphertext | Net.Ledger.Blinded | Net.Ledger.Share
          | Net.Ledger.Metadata ->
            (* Definition 1's permitted "secondary forms". *)
            None
        in
        (match by_sensitivity with
        | Some reason -> fail reason
        | None ->
          (* A secret this node neither holds nor is owed as output must
             never appear verbatim — whatever sensitivity the protocol
             claims for the observation.  Catches leaks mislabeled as
             blinded/encrypted material. *)
          let foreign =
            String_set.diff (String_set.diff all_secrets own) allowed
          in
          if String_set.mem e.value foreign then fail Foreign_secret
          else None))
    (Transcript.events transcript)
