(** A deliberately privacy-broken equality "protocol".

    Returns exactly the oracle's answer — and ships both raw inputs to
    the TTP, once recorded honestly as [Plaintext] and once mislabeled
    as [Blinded].  It exists to prove the harness's negative case: a
    protocol can pass every result-equality check and still fail
    {!View_auditor}, which must flag both the plaintext-at-TTP
    observation and the mislabeled verbatim secret.  Never call this
    outside tests. *)

open Numtheory

val equality_via_ttp :
  net:Net.Network.t ->
  ttp:Net.Node_id.t ->
  left:Net.Node_id.t * Bignum.t ->
  right:Net.Node_id.t * Bignum.t ->
  bool

val checkpoint_with_glsn :
  net:Net.Network.t ->
  publisher:Net.Node_id.t ->
  verifier:Net.Node_id.t ->
  digest:string ->
  glsn:string ->
  unit
(** A deliberately broken checkpoint publication: the chain head is
    annotated with the cleartext glsn that triggered it, so the
    published value is no longer a bare 64-hex digest.
    {!View_auditor}'s ["ckpt:"] event class must flag it as
    [Checkpoint_leak].  Never call this outside tests. *)
