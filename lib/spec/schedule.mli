(** Seeded network schedules for the differential harness.

    A schedule is a recipe for the network a protocol executes on.  The
    protocols' answers must be independent of message timing and of
    loss/retry interleavings, so the harness replays every case on a
    {!suite} of schedules:

    - [uniform] — the default 1 ms-per-hop network;
    - [skewed]  — per-pair latencies from {!Net.Sim.latency_profile},
      so rounds are paced by different bottleneck links;
    - [lossy]   — probabilistic message loss; {!run} retries the whole
      protocol on a fresh network (new seed each attempt, so the drop
      pattern differs) until an attempt completes without a partition.

    Retried attempts share whatever {!Transcript} recorder is
    installed, so views leaked during abandoned runs are audited
    too. *)

type t

val name : t -> string
(** ["uniform"], ["skewed"] or ["lossy"]. *)

val uniform : seed:int -> t
val skewed : seed:int -> t

val lossy : ?max_attempts:int -> seed:int -> unit -> t
(** [max_attempts] bounds the retry loop explicitly (default
    {!default_max_attempts}).
    @raise Invalid_argument if [max_attempts < 1]. *)

val default_max_attempts : int
(** 40 — the historical retry budget. *)

val suite : ?max_attempts:int -> seed:int -> unit -> t list
(** The three schedules above, derived from one chaos seed;
    [max_attempts] applies to the lossy member. *)

exception Gave_up of { schedule : string; attempts : int; reason : string }
(** The lossy retry loop stopped without a completed attempt.  Two
    causes, distinguished by [reason]: the attempt budget ran out on
    transient ("loss") partitions — with the configured loss rate a
    (deterministic, seeded) probability-≈0 event worth investigating —
    or an attempt hit a {e permanent} partition (a node that is down
    stays down no matter how the drop pattern is re-rolled), which
    fails fast instead of looping the differential harness through the
    whole budget. *)

val run : t -> (Net.Network.t -> 'a) -> 'a
(** Build the schedule's network and run the protocol on it.  On the
    lossy schedule, a transient {!Net.Network.Partitioned} (reason
    ["loss"]) aborts the attempt and the protocol is re-run on a
    freshly-seeded network; a permanent partition (a down endpoint)
    raises {!Gave_up} immediately; other exceptions propagate.
    @raise Gave_up on fail-fast or when the attempt budget is
    exhausted. *)

val run_many : t -> count:int -> (Net.Network.t list -> 'a) -> 'a
(** Like {!run} for a fleet: build [count] networks (one per shard of a
    sharded deployment), each seeded from the schedule seed and its
    fleet index, and run the protocol over all of them.  The lossy
    retry loop re-rolls {e every} network of the fleet on a transient
    loss, so retried attempts see a coherent fresh drop pattern.
    [run_many ~count:1] is byte-identical to {!run}.
    @raise Invalid_argument if [count < 1].
    @raise Gave_up as {!run}. *)
