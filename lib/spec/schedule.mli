(** Seeded network schedules for the differential harness.

    A schedule is a recipe for the network a protocol executes on.  The
    protocols' answers must be independent of message timing and of
    loss/retry interleavings, so the harness replays every case on a
    {!suite} of schedules:

    - [uniform] — the default 1 ms-per-hop network;
    - [skewed]  — per-pair latencies from {!Net.Sim.latency_profile},
      so rounds are paced by different bottleneck links;
    - [lossy]   — probabilistic message loss; {!run} retries the whole
      protocol on a fresh network (new seed each attempt, so the drop
      pattern differs) until an attempt completes without a partition.

    Retried attempts share whatever {!Transcript} recorder is
    installed, so views leaked during abandoned runs are audited
    too. *)

type t

val name : t -> string
(** ["uniform"], ["skewed"] or ["lossy"]. *)

val uniform : seed:int -> t
val skewed : seed:int -> t
val lossy : seed:int -> t

val suite : seed:int -> t list
(** The three schedules above, derived from one chaos seed. *)

exception Gave_up of { schedule : string; attempts : int }
(** A lossy run hit a partition on every attempt.  With the configured
    loss rate and attempt budget this is a (deterministic, seeded)
    probability-≈0 event for the §3 protocols' message counts; seeing
    it means the schedule parameters and the protocol's traffic volume
    need a second look. *)

val run : t -> (Net.Network.t -> 'a) -> 'a
(** Build the schedule's network and run the protocol on it.  On the
    lossy schedule, {!Net.Network.Partitioned} aborts the attempt and
    the protocol is re-run on a freshly-seeded network; other
    exceptions propagate.
    @raise Gave_up when the attempt budget is exhausted. *)
