type 'r case = {
  protocol : string;
  input : string;
  run : Net.Network.t -> 'r;
  oracle : 'r;
  equal : 'r -> 'r -> bool;
  show : 'r -> string;
  specs : 'r -> View_auditor.spec list;
}

let counterexample_path () =
  match Sys.getenv_opt "SPEC_COUNTEREXAMPLE_OUT" with
  | Some p when String.trim p <> "" -> p
  | _ -> "spec-counterexample.txt"

let write_counterexample text =
  let oc =
    open_out_gen [ Open_creat; Open_append ] 0o644 (counterexample_path ())
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc text;
      output_char oc '\n')

let check ~schedule c =
  let got, transcript =
    Transcript.record (fun () -> Schedule.run schedule c.run)
  in
  let failure msg =
    write_counterexample msg;
    Error msg
  in
  if not (c.equal got c.oracle) then
    failure
      (Printf.sprintf
         "%s | schedule=%s | input=%s | oracle says %s but protocol returned \
          %s"
         c.protocol (Schedule.name schedule) c.input (c.show c.oracle)
         (c.show got))
  else
    match View_auditor.audit ~specs:(c.specs got) transcript with
    | [] -> Ok ()
    | violations ->
      failure
        (Printf.sprintf "%s | schedule=%s | input=%s | view violations:\n  %s"
           c.protocol (Schedule.name schedule) c.input
           (String.concat "\n  "
              (List.map View_auditor.violation_to_string violations)))
