(** Per-participant transcript recorder.

    Wraps a protocol execution and captures every value observation the
    protocol makes through {!Smc.Proto_util.observe} — i.e. everything
    any principal (participant, TTP role, receiver) sees cross the
    wire, stamped with the {!Obs.Trace} span path of the protocol phase
    it happened in.  The recorded transcript is the raw material for
    {!View_auditor}: the paper's Definition 1 is a statement about
    exactly these per-node views. *)

type event = Smc.Proto_util.wire_event

type t

val record : (unit -> 'a) -> 'a * t
(** Run the thunk with a recorder installed (via
    {!Smc.Proto_util.with_transcript_hook}) and return its result
    together with the captured transcript.  Observations from {e every}
    protocol run inside the thunk accumulate — including failed
    attempts that a retry loop abandons, which is intentional: a view
    leaked during an aborted run is still a leak.  Exceptions from the
    thunk propagate (and discard the transcript). *)

val events : t -> event list
(** All captured observations, oldest first. *)

val size : t -> int

val nodes : t -> Net.Node_id.t list
(** Every node that observed at least one value, sorted. *)

val view : t -> Net.Node_id.t -> event list
(** One node's complete view of the execution, oldest first. *)

val aggregates : t -> Net.Node_id.t -> string list
(** The values a node observed at [Aggregate] sensitivity — its
    authorized final answers, oldest first. *)
