(** View-simulatability auditor (paper Definition 1).

    Relaxed SMC permits each participant to learn the final answer and
    "secondary forms" of foreign data (ciphertexts, blinded images,
    shares, sizes) — and nothing else.  Given a per-protocol
    declaration of who holds which secrets and which final outputs each
    principal is authorized to learn, this module checks a recorded
    {!Transcript} event by event and reports every observation that a
    simulator armed with only the node's own inputs and authorized
    outputs could not have produced.

    The verbatim-value check ([Foreign_secret]) compares observation
    strings against declared secrets at {e every} sensitivity, so a
    leak that was mislabeled as [Blinded] or [Ciphertext] is still
    caught.  The flip side is that honestly-transformed values could in
    principle collide with a secret's string form; over the protocols'
    moduli (≥ 2⁶¹) the collision probability is negligible and the
    differential harness's inputs keep it that way. *)

type role =
  | Participant  (** holds inputs; may see its own secrets in the clear *)
  | Blind_ttp
      (** blind coordinator / external receiver: must never observe any
          plaintext, and only authorized aggregates *)

type spec = {
  node : Net.Node_id.t;
  role : role;
  secrets : string list;
      (** the node's own private inputs, in the exact string form the
          protocol records them *)
  allowed_outputs : string list;
      (** final answers this node is authorized to learn (Definition
          1's f(a₁…aₙ)) *)
}

type reason =
  | Unknown_observer  (** an event for a node no spec covers *)
  | Foreign_secret  (** another node's secret, verbatim, any sensitivity *)
  | Plaintext_at_ttp  (** any plaintext in a blind role's view *)
  | Unauthorized_plaintext
      (** plaintext outside the node's own secrets and authorized
          outputs *)
  | Unauthorized_aggregate
      (** a final-answer observation the spec does not authorize *)
  | Verifier_leak
      (** a ["byz:"]-tagged verification event that is not a [Metadata]
          observation of a 64-hex SHA-256 commitment — the Byzantine
          defenses themselves must leak nothing *)
  | Checkpoint_leak
      (** a ["ckpt:"]-tagged checkpoint publication that is not a
          [Metadata] observation of a 64-hex chain digest — the
          continuous engine's tamper evidence must itself stay
          metadata-only *)

type violation = { event : Transcript.event; reason : reason }

val reason_to_string : reason -> string
val violation_to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

val audit : specs:spec list -> Transcript.t -> violation list
(** All violations in transcript order; [[]] means every recorded view
    is simulatable from own inputs + authorized outputs. *)
