type kind = Uniform | Skewed | Lossy

type t = { kind : kind; seed : int }

let name t =
  match t.kind with
  | Uniform -> "uniform"
  | Skewed -> "skewed"
  | Lossy -> "lossy"

let uniform ~seed = { kind = Uniform; seed }
let skewed ~seed = { kind = Skewed; seed }
let lossy ~seed = { kind = Lossy; seed }

let suite ~seed =
  [ uniform ~seed; skewed ~seed:(seed + 1); lossy ~seed:(seed + 2) ]

exception Gave_up of { schedule : string; attempts : int }

let () =
  Printexc.register_printer (function
    | Gave_up { schedule; attempts } ->
      Some
        (Printf.sprintf "Spec.Schedule.Gave_up(%s after %d attempts)" schedule
           attempts)
    | _ -> None)

let loss_rate = 0.01
let max_attempts = 40

let network t ~attempt =
  match t.kind with
  | Uniform -> Net.Network.create ~seed:t.seed ()
  | Skewed ->
    Net.Network.create ~seed:t.seed
      ~latency_ms:(Net.Sim.latency_profile ~seed:t.seed ())
      ()
  | Lossy ->
    (* A fresh seed per attempt re-rolls the drop pattern, so retries
       explore different loss interleavings rather than replaying the
       same doomed one. *)
    Net.Network.create ~seed:(t.seed + (7919 * attempt)) ~loss_rate ()

let run t f =
  match t.kind with
  | Uniform | Skewed -> f (network t ~attempt:0)
  | Lossy ->
    let rec attempt_from n =
      if n >= max_attempts then
        raise (Gave_up { schedule = name t; attempts = n })
      else
        match f (network t ~attempt:n) with
        | result -> result
        | exception Net.Network.Partitioned _ -> attempt_from (n + 1)
    in
    attempt_from 0
