type kind = Uniform | Skewed | Lossy

type t = { kind : kind; seed : int; max_attempts : int }

let name t =
  match t.kind with
  | Uniform -> "uniform"
  | Skewed -> "skewed"
  | Lossy -> "lossy"

let default_max_attempts = 40

let uniform ~seed = { kind = Uniform; seed; max_attempts = 1 }
let skewed ~seed = { kind = Skewed; seed; max_attempts = 1 }

let lossy ?(max_attempts = default_max_attempts) ~seed () =
  if max_attempts < 1 then invalid_arg "Schedule.lossy: max_attempts < 1";
  { kind = Lossy; seed; max_attempts }

let suite ?max_attempts ~seed () =
  [
    uniform ~seed;
    skewed ~seed:(seed + 1);
    lossy ?max_attempts ~seed:(seed + 2) ();
  ]

exception Gave_up of { schedule : string; attempts : int; reason : string }

let () =
  Printexc.register_printer (function
    | Gave_up { schedule; attempts; reason } ->
      Some
        (Printf.sprintf "Spec.Schedule.Gave_up(%s after %d attempts: %s)"
           schedule attempts reason)
    | _ -> None)

let loss_rate = 0.01

(* [index] derives one network of a fleet from the schedule seed — a
   sharded deployment runs one network per shard, each with its own
   latency/drop pattern but all pinned by the one chaos seed.  131 is
   coprime to 7919, so per-attempt reseeding never collides a retry of
   shard i with a first try of shard j. *)
let network ?(index = 0) t ~attempt =
  let seed = t.seed + (131 * index) in
  match t.kind with
  | Uniform -> Net.Network.of_config (Net.Config.make ~seed ())
  | Skewed ->
    Net.Network.of_config (Net.Config.make ~seed ~latency_ms:(Net.Config.latency_profile ~seed ()) ())
  | Lossy ->
    (* A fresh seed per attempt re-rolls the drop pattern, so retries
       explore different loss interleavings rather than replaying the
       same doomed one. *)
    Net.Network.of_config (Net.Config.make ~seed:(seed + (7919 * attempt)) ~loss_rate ())

let run_networks t ~count f =
  if count < 1 then invalid_arg "Schedule.run_many: count < 1";
  let networks attempt = List.init count (fun i -> network ~index:i t ~attempt) in
  match t.kind with
  | Uniform | Skewed -> f (networks 0)
  | Lossy ->
    let rec attempt_from n =
      if n >= t.max_attempts then
        raise
          (Gave_up
             {
               schedule = name t;
               attempts = n;
               reason =
                 Printf.sprintf "attempt budget (%d) exhausted"
                   t.max_attempts;
             })
      else
        match f (networks n) with
        | result -> result
        | exception Net.Network.Partitioned { reason = "loss"; _ } ->
          attempt_from (n + 1)
        | exception Net.Network.Partitioned { src; dst; reason } ->
          (* A down endpoint is a permanent condition for the attempt
             loop: re-rolling the drop pattern can never heal it, so
             fail fast instead of burning the whole budget. *)
          raise
            (Gave_up
               {
                 schedule = name t;
                 attempts = n + 1;
                 reason =
                   Printf.sprintf "permanent partition %s -> %s (%s)"
                     (Net.Node_id.to_string src) (Net.Node_id.to_string dst)
                     reason;
               })
    in
    attempt_from 0

let run t f =
  run_networks t ~count:1 (function [ net ] -> f net | _ -> assert false)

let run_many t ~count f = run_networks t ~count f
