type event = Smc.Proto_util.wire_event

type t = { mutable rev_events : event list }

let record f =
  let t = { rev_events = [] } in
  let result =
    Smc.Proto_util.with_transcript_hook
      (fun e -> t.rev_events <- e :: t.rev_events)
      f
  in
  (result, t)

let events t = List.rev t.rev_events
let size t = List.length t.rev_events

let nodes t =
  List.sort_uniq Net.Node_id.compare
    (List.map (fun (e : event) -> e.node) t.rev_events)

let view t node =
  List.filter (fun (e : event) -> Net.Node_id.equal e.node node) (events t)

let aggregates t node =
  List.filter_map
    (fun (e : event) ->
      if Net.Node_id.equal e.node node && e.sensitivity = Net.Ledger.Aggregate
      then Some e.value
      else None)
    (events t)
