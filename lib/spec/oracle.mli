(** Cleartext reference oracles for the §3 protocols.

    Each oracle computes what the paper's trusted third party would
    return given every input in the clear — the "ideal functionality"
    the secure protocols must agree with.  The differential harness
    ({!Differential}) runs real protocol executions and these oracles on
    the same inputs and asserts equal answers; the oracles themselves
    are deliberately naive so that a reviewer can check them against §3
    by inspection. *)

open Numtheory

val intersection : string list list -> string list
(** ∩ₛ (§3.1): sorted, deduplicated intersection of all input sets.
    Empty input list yields the empty set. *)

val union : string list list -> string list
(** ∪ₛ (§3.4): sorted, deduplicated union of all input sets. *)

val equality : Bignum.t -> Bignum.t -> bool
(** =ₛ (§3.2). *)

val sum : p:Bignum.t -> Bignum.t list -> Bignum.t
(** Σₛ (§3.5): sum of the values mod [p]. *)

val weighted_sum :
  p:Bignum.t ->
  weights:(Net.Node_id.t * Bignum.t) list ->
  (Net.Node_id.t * Bignum.t) list ->
  Bignum.t
(** Σ αᵢ·aᵢ mod [p] (§3.5, final paragraph).  Mirrors
    {!Smc.Sum.run_weighted}: nodes without a listed weight default to
    weight 1, listed weights are normalized mod [p]. *)

val ranking : (Net.Node_id.t * Bignum.t) list -> Smc.Ranking.verdict
(** Maxₛ/Minₛ/Rankₛ (§3.3) on cleartext values, with exactly
    {!Smc.Ranking}'s tie conventions: rank 1 is the smallest and ties
    share the lower rank; with tied extrema the minimum holder is the
    earliest such party in input order and the maximum holder the
    latest (both inherited from the stable sort).
    @raise Failure on an empty input list. *)

val majority : (Net.Node_id.t * Smc.Majority.vote) list -> Smc.Majority.outcome
(** Honest commit-then-reveal majority (§2): straight vote count, no
    flagged nodes, [verdict = None] on a tie. *)
