(** Fixed pool of OCaml 5 domains for pure batch compute.

    The reactor runtime farms the modexp-heavy tail of an SMC round —
    {!Modular.pow_many} batches, resident ring-pass re-encryptions — to
    a small set of worker domains.  Determinism is preserved by
    construction: work is split into {e contiguous} chunks whose sizes
    depend only on the batch length and the pool width, results are
    joined in submission order, and workers run pure closures that
    touch neither the global metrics registry nor the shared Montgomery
    context cache (each chunk builds private context state).  A batch
    therefore returns byte-identical results at any pool width.

    Submission happens only from the domain that owns the pool; worker
    domains never submit.  Counters ([pool.*]) are advanced on the
    submitter side only, so {!Obs.Metrics} is never written
    concurrently. *)

type t

val create : domains:int -> t
(** A pool that splits batches [domains] ways.  [domains - 1] worker
    domains are spawned (the submitting domain always executes the
    first chunk itself); [~domains:1] spawns nothing and runs every
    batch inline.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** The configured width (including the submitter). *)

val inline : t
(** The shared width-1 pool: every batch runs inline on the caller.
    This is {!current}'s default, so library code can call
    {!map_list} unconditionally. *)

val current : unit -> t
(** The ambient pool installed by the innermost {!with_pool}, or
    {!inline} outside any scope. *)

val with_pool : t -> (unit -> 'a) -> 'a
(** Run a thunk with [t] installed as the ambient pool ({!current});
    restores the previous pool on exit, including on exceptions. *)

val map_list : t -> min_chunk:int -> ('a list -> 'b list) -> 'a list -> 'b list
(** [map_list t ~min_chunk f xs] splits [xs] into at most
    [domains t] contiguous chunks, applies [f] to each chunk ([f] must
    be pure and element-wise: [f (a @ b) = f a @ f b]), and
    concatenates the results in order — observationally [f xs].
    Batches shorter than [2 * min_chunk] (and any batch on a width-1
    pool) run inline on the caller; farmed batches advance
    [pool.batches] and [pool.jobs], inline ones [pool.inline].
    Exceptions raised by a chunk are re-raised on the caller. *)

val fence : t -> unit
(** Block until every submitted chunk has completed — the round
    barrier: {!Smc.Proto_util.round} fences the ambient pool before
    advancing virtual time, so no compute outlives the round that
    scheduled it.  No-op on an idle or width-1 pool. *)

val shutdown : t -> unit
(** Fence, then stop and join the worker domains.  The pool must not
    be used afterwards; idempotent. *)
