(* SplitMix64 (Steele, Lea, Flood 2014).  Small state, good statistical
   quality, and splittable — which is what lets each simulated node carry
   its own independent stream derived from the experiment seed. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (next_int64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive"
  else begin
    (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
    let mask = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if bound land (bound - 1) = 0 then mask land (bound - 1)
    else begin
      let limit = max_int - (max_int mod bound) in
      let rec go v = if v < limit then v mod bound else go (Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)) in
      go mask
    end
  end

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let bits t n =
  if n < 0 then invalid_arg "Prng.bits: negative width"
  else begin
    let rec go acc got =
      if got >= n then Bignum.shift_right acc (got - n)
      else begin
        let chunk = Int64.to_int (Int64.shift_right_logical (next_int64 t) 16) in
        go (Bignum.add_int (Bignum.shift_left acc 48) chunk) (got + 48)
      end
    in
    go Bignum.zero 0
  end

let bignum_below t bound =
  if Bignum.sign bound <= 0 then
    invalid_arg "Prng.bignum_below: bound must be positive"
  else begin
    let width = Bignum.num_bits bound in
    let rec go () =
      let candidate = bits t width in
      if Bignum.compare candidate bound < 0 then candidate else go ()
    in
    go ()
  end

let bignum_range t lo hi =
  if Bignum.compare lo hi >= 0 then invalid_arg "Prng.bignum_range: empty range"
  else Bignum.add lo (bignum_below t (Bignum.sub hi lo))

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))
