let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load. *)
  let limit = 1000 in
  let composite = Array.make (limit + 1) false in
  let rec mark i =
    if i * i <= limit then begin
      if not composite.(i) then begin
        let j = ref (i * i) in
        while !j <= limit do
          composite.(!j) <- true;
          j := !j + i
        done
      end;
      mark (i + 1)
    end
  in
  mark 2;
  let acc = ref [] in
  for i = limit downto 2 do
    if not composite.(i) then acc := i :: !acc
  done;
  !acc

let divisible_by_small_prime n =
  List.exists
    (fun p ->
      let bp = Bignum.of_int p in
      Bignum.compare n bp > 0 && Bignum.is_zero (Bignum.rem n bp))
    small_primes

(* One Miller-Rabin round: n - 1 = d * 2^s with d odd; witness a proves
   compositeness unless a^d = 1 or a^(d*2^r) = n-1 for some r < s. *)
let miller_rabin_round n d s a =
  let x = Modular.pow a d ~m:n in
  let n_minus_1 = Bignum.pred n in
  if Bignum.equal x Bignum.one || Bignum.equal x n_minus_1 then true
  else begin
    let rec squares x r =
      if r >= s then false
      else begin
        let x = Modular.mul x x ~m:n in
        if Bignum.equal x n_minus_1 then true else squares x (r + 1)
      end
    in
    squares x 1
  end

let is_probable_prime ?(rounds = 24) rng n =
  if Bignum.sign n <= 0 then false
  else begin
    match Bignum.to_int_opt n with
    | Some v when v < 2 -> false
    | Some v when v < 4 -> true (* 2, 3 *)
    | _ ->
      if Bignum.is_even n then false
      else if List.exists (fun p -> Bignum.equal n (Bignum.of_int p)) small_primes
      then true
      else if divisible_by_small_prime n then false
      else begin
        let n_minus_1 = Bignum.pred n in
        let rec split d s =
          if Bignum.is_even d then split (Bignum.shift_right d 1) (s + 1)
          else (d, s)
        in
        let d, s = split n_minus_1 0 in
        let rec rounds_left k =
          if k = 0 then true
          else begin
            let a = Prng.bignum_range rng Bignum.two n_minus_1 in
            miller_rabin_round n d s a && rounds_left (k - 1)
          end
        in
        rounds_left rounds
      end
  end

let random_prime ?(rounds = 24) rng ~bits =
  if bits < 2 then invalid_arg "Primes.random_prime: need at least 2 bits"
  else begin
    let rec go () =
      let candidate = Prng.bits rng bits in
      (* Force the top bit (exact width) and the bottom bit (odd). *)
      let top = Bignum.shift_left Bignum.one (bits - 1) in
      let candidate = Bignum.logor (Bignum.logor candidate top) Bignum.one in
      if is_probable_prime ~rounds rng candidate then candidate else go ()
    in
    go ()
  end

let random_safe_prime ?(rounds = 24) rng ~bits =
  if bits < 4 then invalid_arg "Primes.random_safe_prime: need at least 4 bits"
  else begin
    let rec go () =
      let q = random_prime ~rounds rng ~bits:(bits - 1) in
      let p = Bignum.succ (Bignum.shift_left q 1) in
      if Bignum.num_bits p = bits && is_probable_prime ~rounds rng p then p
      else go ()
    in
    go ()
  end

let next_prime ?(rounds = 24) rng n =
  let start =
    if Bignum.compare n Bignum.two < 0 then Bignum.two
    else begin
      let n = Bignum.succ n in
      if Bignum.is_even n then Bignum.succ n else n
    end
  in
  if Bignum.equal start Bignum.two then Bignum.two
  else begin
    let rec go candidate =
      if is_probable_prime ~rounds rng candidate then candidate
      else go (Bignum.add candidate Bignum.two)
    in
    go start
  end

let rsa_modulus ?(rounds = 24) rng ~bits =
  if bits < 8 then invalid_arg "Primes.rsa_modulus: need at least 8 bits"
  else begin
    let half = bits / 2 in
    let p = random_prime ~rounds rng ~bits:half in
    let rec distinct () =
      let q = random_prime ~rounds rng ~bits:half in
      if Bignum.equal p q then distinct () else q
    in
    let q = distinct () in
    (Bignum.mul p q, p, q)
  end
