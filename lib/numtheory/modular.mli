(** Modular arithmetic over [Bignum.t].

    All functions reduce into the canonical residue range [\[0, m)].
    This layer is the workhorse of the Pohlig–Hellman commutative cipher
    (modular exponentiation), Shamir reconstruction (modular inverse of
    Lagrange denominators) and the one-way accumulator. *)

val normalize : Bignum.t -> m:Bignum.t -> Bignum.t
(** Canonical residue of any integer modulo [m > 0]. *)

val add : Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t
val sub : Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t
val mul : Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t

val pow : Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t
(** [pow b e ~m] is [b^e mod m] for [e >= 0].  Dispatches to Montgomery
    exponentiation for odd multi-limb moduli with non-trivial exponents
    (the common cryptographic case) and falls back to classic
    square-and-multiply otherwise.
    @raise Invalid_argument on a negative exponent. *)

val pow_many : Bignum.t list -> Bignum.t -> m:Bignum.t -> Bignum.t list
(** [pow_many bs e ~m] is [List.map (fun b -> pow b e ~m) bs], but on
    the Montgomery path the exponent windows are recoded and the scratch
    arrays allocated once for the whole batch ({!Montgomery.powers}).
    When a multi-domain {!Domain_pool} is ambient
    ({!Domain_pool.current}), large batches are additionally split into
    contiguous chunks farmed across the pool, each chunk under a
    private context.  Results are value-identical to the
    element-at-a-time path at any pool width, so protocol transcripts
    built over it are byte-identical. *)

val pow_base : base:Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t
(** [pow_base ~base e ~m] is [pow base e ~m] through a fixed-base
    window table ({!Montgomery.pow_base}) cached LRU by
    [(m, base mod m)] — zero squarings per call once the table is
    warm, so repeated powers of a long-lived base (an accumulator
    seed, a Pohlig–Hellman generator, a threshold-RSA digest) cost a
    handful of multiplications each.  Counters:
    [crypto.mont.fixed_base_hit] / [fixed_base_miss] /
    [fixed_base_table_create].  Falls back to the generic {!pow}
    dispatch for even or single-limb moduli and for exponents wider
    than ~16k bits (where the table build would dominate).
    Value-identical to {!pow} in every case.
    @raise Invalid_argument on a negative exponent. *)

val multi_pow : (Bignum.t * Bignum.t) list -> m:Bignum.t -> Bignum.t
(** [multi_pow \[(b1, e1); ...\] ~m] is [Π bi^ei mod m] via Shamir's
    trick ({!Montgomery.multi_pow}): one shared squaring chain for all
    bases (counter [crypto.mont.multi_pow]).  Falls back to the naive
    product of independent powers for non-Montgomery moduli.
    [multi_pow \[\] ~m = 1 mod m].
    @raise Invalid_argument on negative exponents. *)

val pow_classic : Bignum.t -> Bignum.t -> m:Bignum.t -> Bignum.t
(** The division-based square-and-multiply path, exposed for the modexp
    ablation bench and as the reference in tests. *)

val mont_ctx_opt : Bignum.t -> Montgomery.ctx option
(** The shared LRU-cached Montgomery context for [m], or [None] when
    [m] is outside the Montgomery domain shape (even or < 64 bits).
    Consumers holding {!Montgomery.resident} chains (the SMC ring
    passes) use this so their in-domain work shares contexts — and
    cache counters — with {!pow}. *)

val reset_mont_cache : unit -> unit
(** Drop every cached Montgomery context and fixed-base table.  The
    caches are process-global; benchmarks and cache-behavior tests
    reset them so their [crypto.mont.*] counters are independent of
    what ran before. *)

val mont_cache_capacity : unit -> int
(** Current LRU capacity (contexts and fixed-base tables each retain
    this many entries). *)

val set_mont_cache_capacity : int -> unit
(** Resize both LRUs (clamped to >= 1), evicting oldest entries
    immediately if shrinking.  Benchmarks size this from the number of
    live moduli in the workload; the default is 8. *)

val gcd : Bignum.t -> Bignum.t -> Bignum.t

val extended_gcd : Bignum.t -> Bignum.t -> Bignum.t * Bignum.t * Bignum.t
(** [extended_gcd a b = (g, x, y)] with [g = gcd a b = a*x + b*y]. *)

val inverse : Bignum.t -> m:Bignum.t -> Bignum.t option
(** Multiplicative inverse mod [m], or [None] when [gcd a m <> 1]. *)

val inverse_exn : Bignum.t -> m:Bignum.t -> Bignum.t
(** @raise Invalid_argument when no inverse exists. *)

val crt : (Bignum.t * Bignum.t) list -> Bignum.t * Bignum.t
(** [crt \[(r1, m1); (r2, m2); ...\]] solves the simultaneous congruences
    [x = ri mod mi] for pairwise-coprime moduli, returning
    [(x, m1*m2*...)] with [0 <= x < product].
    @raise Invalid_argument when moduli are not coprime. *)

val jacobi : Bignum.t -> Bignum.t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]; result in [{-1, 0, 1}]. *)
