let normalize a ~m =
  if Bignum.sign m <= 0 then invalid_arg "Modular: modulus must be positive"
  else Bignum.erem a m

let add a b ~m = normalize (Bignum.add a b) ~m
let sub a b ~m = normalize (Bignum.sub a b) ~m
let mul a b ~m = normalize (Bignum.mul a b) ~m

let pow_classic b e ~m =
  if Bignum.sign e < 0 then invalid_arg "Modular.pow: negative exponent"
  else if Bignum.equal m Bignum.one then Bignum.zero
  else begin
    (* Left-to-right square-and-multiply over the bits of [e]. *)
    let b = normalize b ~m in
    let nbits = Bignum.num_bits e in
    let acc = ref Bignum.one in
    for i = nbits - 1 downto 0 do
      acc := mul !acc !acc ~m;
      if Bignum.test_bit e i then acc := mul !acc b ~m
    done;
    !acc
  end

(* Small LRU cache of Montgomery contexts keyed by modulus.  Protocol
   runs interleave exponentiations under several moduli at once (each
   node's Pohlig–Hellman prime, a Paillier n and n², an accumulator
   n, ...), and rebuilding R² mod m on every switch costs more than the
   exponentiation it serves.  Move-to-front list: the working set is a
   handful of moduli, so linear scans are cheaper than hashing bignums. *)
let default_mont_cache_capacity = 8
let capacity = ref default_mont_cache_capacity
let mont_cache_capacity () = !capacity
let mont_cache : Montgomery.ctx list ref = ref []

(* Fixed-base window tables ride in their own LRU, keyed by
   (modulus, base): several long-lived bases can share one modulus
   (accumulator seed and witnesses, threshold-RSA digests), and a
   table is much heavier than a ctx, so the two caches age
   independently under the same capacity knob. *)
let base_cache : Montgomery.base_table list ref = ref []

let reset_mont_cache () =
  mont_cache := [];
  base_cache := []

let rec cache_take m acc = function
  | [] -> None
  | ctx :: rest ->
    if Bignum.equal (Montgomery.modulus ctx) m then
      Some (ctx, List.rev_append acc rest)
    else cache_take m (ctx :: acc) rest

let rec cache_trim n = function
  | [] -> []
  | _ :: _ when n = 0 -> []
  | ctx :: rest -> ctx :: cache_trim (n - 1) rest

let set_mont_cache_capacity n =
  let n = max 1 n in
  capacity := n;
  mont_cache := cache_trim n !mont_cache;
  base_cache := cache_trim n !base_cache

let mont_ctx m =
  match cache_take m [] !mont_cache with
  | Some (ctx, rest) ->
    Obs.Metrics.incr "crypto.mont.cache_hit";
    mont_cache := ctx :: rest;
    ctx
  | None ->
    Obs.Metrics.incr "crypto.mont.cache_miss";
    Obs.Metrics.incr "crypto.mont.ctx_create";
    let ctx = Montgomery.create m in
    mont_cache := ctx :: cache_trim (!capacity - 1) !mont_cache;
    ctx

let mont_ctx_opt m =
  if Bignum.is_odd m && Bignum.num_bits m >= 64 then Some (mont_ctx m)
  else None

let rec base_cache_take ~base ~m acc = function
  | [] -> None
  | t :: rest ->
    if
      Bignum.equal (Montgomery.table_base t) base
      && Bignum.equal (Montgomery.table_modulus t) m
    then Some (t, List.rev_append acc rest)
    else base_cache_take ~base ~m (t :: acc) rest

let base_table ~base ~m =
  let base = normalize base ~m in
  match base_cache_take ~base ~m [] !base_cache with
  | Some (t, rest) ->
    Obs.Metrics.incr "crypto.mont.fixed_base_hit";
    base_cache := t :: rest;
    t
  | None ->
    Obs.Metrics.incr "crypto.mont.fixed_base_miss";
    Obs.Metrics.incr "crypto.mont.fixed_base_table_create";
    let t = Montgomery.base_table (mont_ctx m) base in
    base_cache := t :: cache_trim (!capacity - 1) !base_cache;
    t

(* Montgomery pays off once the per-multiplication division savings
   outweigh the one-time domain setup. *)
let use_montgomery ~m ~e =
  Bignum.is_odd m && Bignum.num_bits m >= 64 && Bignum.num_bits e >= 16

let pow b e ~m =
  if Bignum.sign e < 0 then invalid_arg "Modular.pow: negative exponent"
  else if Bignum.equal m Bignum.one then Bignum.zero
  else if use_montgomery ~m ~e then begin
    Obs.Metrics.incr "crypto.mont.pow";
    Montgomery.pow (mont_ctx m) b e
  end
  else pow_classic b e ~m

(* Below this many elements per chunk, farming a batch to worker
   domains costs more in context setup and joins than it saves. *)
let pool_min_chunk = 16

let pow_many bs e ~m =
  match bs with
  | [ b ] ->
    (* Single-element batch: same dispatch as [pow], no separate plan
       construction (and no 16-entry table on the tiny path). *)
    if Bignum.sign e < 0 then
      invalid_arg "Modular.pow_many: negative exponent"
    else [ pow b e ~m ]
  | _ ->
    if Bignum.sign e < 0 then invalid_arg "Modular.pow_many: negative exponent"
    else if Bignum.equal m Bignum.one then
      List.map (fun _ -> Bignum.zero) bs
    else if use_montgomery ~m ~e then begin
      Obs.Metrics.incr ~by:(List.length bs) "crypto.mont.pow";
      let pool = Domain_pool.current () in
      if Domain_pool.domains pool > 1 && List.length bs >= 2 * pool_min_chunk
      then begin
        (* Farmed path.  The submitter still touches the shared LRU
           exactly once, so crypto.mont.cache_* counters match the
           inline path; each chunk then builds a private context —
           the cached one's scratch buffers are not shareable across
           domains — and private contexts over the same modulus
           produce bit-identical canonical results. *)
        ignore (mont_ctx m);
        Domain_pool.map_list pool ~min_chunk:pool_min_chunk
          (fun chunk ->
            let ctx = Montgomery.create m in
            Montgomery.pow_many (Montgomery.powers ctx e) chunk)
          bs
      end
      else Montgomery.pow_many (Montgomery.powers (mont_ctx m) e) bs
    end
    else List.map (fun b -> pow_classic b e ~m) bs

(* Fixed-base exponentiation: the window table only pays for itself
   when the base is long-lived, so gate on the same modulus shape as
   [use_montgomery] plus a width cap — a table for a w-window exponent
   is 15·w residues, and past ~16k exponent bits the build cost and
   footprint outweigh any plausible reuse. *)
let fixed_base_max_bits = 16384

let pow_base ~base e ~m =
  if Bignum.sign e < 0 then invalid_arg "Modular.pow_base: negative exponent"
  else if Bignum.equal m Bignum.one then Bignum.zero
  else if
    Bignum.is_odd m && Bignum.num_bits m >= 64
    && Bignum.num_bits e <= fixed_base_max_bits
  then Montgomery.pow_base (base_table ~base ~m) e
  else pow base e ~m

let multi_pow pairs ~m =
  List.iter
    (fun (_, e) ->
      if Bignum.sign e < 0 then
        invalid_arg "Modular.multi_pow: negative exponent")
    pairs;
  if Bignum.equal m Bignum.one then Bignum.zero
  else begin
    let widest =
      List.fold_left (fun acc (_, e) -> max acc (Bignum.num_bits e)) 0 pairs
    in
    if Bignum.is_odd m && Bignum.num_bits m >= 64 && widest >= 16 then begin
      Obs.Metrics.incr "crypto.mont.multi_pow";
      Montgomery.multi_pow (mont_ctx m) pairs
    end
    else
      (* Naive fallback for non-Montgomery moduli (or all-tiny
         exponents): the plain product of independent powers. *)
      List.fold_left
        (fun acc (b, e) -> mul acc (pow b e ~m) ~m)
        (normalize Bignum.one ~m) pairs
  end

let rec gcd a b =
  if Bignum.is_zero b then Bignum.abs a else gcd b (Bignum.rem a b)

let extended_gcd a b =
  (* Iterative extended Euclid; invariant r_i = a*x_i + b*y_i. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if Bignum.is_zero r1 then (r0, x0, y0)
    else begin
      let q, r2 = Bignum.div_rem r0 r1 in
      go r1 x1 y1 r2
        (Bignum.sub x0 (Bignum.mul q x1))
        (Bignum.sub y0 (Bignum.mul q y1))
    end
  in
  let g, x, y = go a Bignum.one Bignum.zero b Bignum.zero Bignum.one in
  if Bignum.sign g < 0 then (Bignum.neg g, Bignum.neg x, Bignum.neg y)
  else (g, x, y)

let inverse a ~m =
  let g, x, _ = extended_gcd (normalize a ~m) m in
  if Bignum.equal g Bignum.one then Some (normalize x ~m) else None

let inverse_exn a ~m =
  match inverse a ~m with
  | Some v -> v
  | None -> invalid_arg "Modular.inverse_exn: element is not invertible"

let crt congruences =
  match congruences with
  | [] -> invalid_arg "Modular.crt: empty system"
  | (r0, m0) :: rest ->
    let combine (r1, m1) (r2, m2) =
      (* x = r1 + m1 * k with m1*k = r2 - r1 (mod m2). *)
      let g, p, _ = extended_gcd m1 m2 in
      if not (Bignum.equal g Bignum.one) then
        invalid_arg "Modular.crt: moduli are not coprime"
      else begin
        let m = Bignum.mul m1 m2 in
        let diff = Bignum.sub r2 r1 in
        let k = normalize (Bignum.mul diff p) ~m:m2 in
        (normalize (Bignum.add r1 (Bignum.mul m1 k)) ~m, m)
      end
    in
    List.fold_left combine (normalize r0 ~m:m0, m0) rest

let jacobi a n =
  if Bignum.sign n <= 0 || Bignum.is_even n then
    invalid_arg "Modular.jacobi: n must be odd and positive"
  else begin
    let rec go a n acc =
      let a = Bignum.erem a n in
      if Bignum.is_zero a then if Bignum.equal n Bignum.one then acc else 0
      else begin
        (* Pull out factors of two, flipping sign when n = ±3 mod 8. *)
        let rec twos a acc =
          if Bignum.is_even a then begin
            let n_mod8 = Bignum.to_int (Bignum.logand n (Bignum.of_int 7)) in
            let acc = if n_mod8 = 3 || n_mod8 = 5 then -acc else acc in
            twos (Bignum.shift_right a 1) acc
          end
          else (a, acc)
        in
        let a, acc = twos a acc in
        if Bignum.equal a Bignum.one then acc
        else begin
          (* Quadratic reciprocity flip. *)
          let a_mod4 = Bignum.to_int (Bignum.logand a (Bignum.of_int 3)) in
          let n_mod4 = Bignum.to_int (Bignum.logand n (Bignum.of_int 3)) in
          let acc = if a_mod4 = 3 && n_mod4 = 3 then -acc else acc in
          go n a acc
        end
      end
    in
    go a n 1
  end
