(** Deterministic pseudo-random source (SplitMix64 core).

    Used for simulation reproducibility and for the randomized parts of
    the number-theoretic algorithms (Miller–Rabin witnesses, key and
    prime generation).  Every experiment in this repository is seeded, so
    runs are exactly repeatable. *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent generator with identical future output. *)

val split : t -> t
(** Derive an independent child stream (SplitMix "split"). *)

val next_int64 : t -> int64
(** Uniform over all 2^64 values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bits : t -> int -> Bignum.t
(** [bits t n] is a uniform [n]-bit magnitude (high bit not forced). *)

val bignum_below : t -> Bignum.t -> Bignum.t
(** Uniform in [\[0, bound)] by rejection sampling.
    [bound] must be positive. *)

val bignum_range : t -> Bignum.t -> Bignum.t -> Bignum.t
(** [bignum_range t lo hi] is uniform in [\[lo, hi)]. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)
