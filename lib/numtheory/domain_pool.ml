type task = unit -> unit

type t = {
  width : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  drained : Condition.t;
  mutable outstanding : int;  (* chunks submitted, not yet completed *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.width

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    Mutex.lock t.lock;
    t.outstanding <- t.outstanding - 1;
    if t.outstanding = 0 then Condition.broadcast t.drained;
    Mutex.unlock t.lock;
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let t =
    {
      width = domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      outstanding = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let inline = create ~domains:1

let active = ref inline
let current () = !active

let with_pool t f =
  let previous = !active in
  active := t;
  Fun.protect ~finally:(fun () -> active := previous) f

(* A one-shot cell filled by a worker; the submitter blocks on [await].
   Exceptions cross the domain boundary as values and re-raise at the
   join, so a failing chunk behaves like the inline path. *)
type 'a cell = {
  cell_lock : Mutex.t;
  cell_filled : Condition.t;
  mutable cell : ('a, exn) result option;
}

let submit t f =
  let cell =
    { cell_lock = Mutex.create (); cell_filled = Condition.create (); cell = None }
  in
  let task () =
    let result = try Ok (f ()) with e -> Error e in
    Mutex.lock cell.cell_lock;
    cell.cell <- Some result;
    Condition.signal cell.cell_filled;
    Mutex.unlock cell.cell_lock
  in
  Mutex.lock t.lock;
  t.outstanding <- t.outstanding + 1;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  cell

let await cell =
  Mutex.lock cell.cell_lock;
  while cell.cell = None do
    Condition.wait cell.cell_filled cell.cell_lock
  done;
  Mutex.unlock cell.cell_lock;
  match cell.cell with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

(* Contiguous chunks with sizes that depend only on (length, width):
   the first [len mod width] chunks get one extra element. *)
let chunk_sizes len width =
  let base = len / width and extra = len mod width in
  List.init width (fun i -> base + if i < extra then 1 else 0)
  |> List.filter (fun s -> s > 0)

let split_chunks xs sizes =
  let rec take acc n xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (x :: acc) (n - 1) rest
  in
  let rec go acc xs = function
    | [] -> List.rev acc
    | size :: rest ->
      let chunk, xs = take [] size xs in
      go (chunk :: acc) xs rest
  in
  go [] xs sizes

let map_list t ~min_chunk f xs =
  let len = List.length xs in
  if t.width <= 1 || len < 2 * min_chunk then begin
    Obs.Metrics.incr "pool.inline";
    f xs
  end
  else begin
    match split_chunks xs (chunk_sizes len t.width) with
    | [] | [ _ ] ->
      Obs.Metrics.incr "pool.inline";
      f xs
    | first :: rest ->
      Obs.Metrics.incr "pool.batches";
      Obs.Metrics.incr ~by:(List.length rest) "pool.jobs";
      Obs.Metrics.set_max "pool.domains.max" t.width;
      let cells = List.map (fun chunk -> submit t (fun () -> f chunk)) rest in
      (* The submitter takes the first chunk itself, then joins the
         farmed tails in submission order — result order is that of
         [xs] regardless of worker interleaving. *)
      let head = f first in
      head :: List.map await cells |> List.concat
  end

let fence t =
  if t.width > 1 then begin
    Mutex.lock t.lock;
    while t.outstanding > 0 do
      Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock
  end

let shutdown t =
  if t.width > 1 then begin
    fence t;
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
