(* Arbitrary-precision signed integers on 26-bit limbs.

   Invariants, maintained by every constructor:
   - [mag] is little-endian, each limb in [0, 2^26), no leading (high) zero
     limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1.

   26-bit limbs keep every intermediate value of schoolbook multiplication
   and Knuth division below 2^53, far inside the 63-bit native [int]. *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude (natural number) primitives on bare limb arrays.          *)
(* ------------------------------------------------------------------ *)

(* Strip high zero limbs; shares the array when already trimmed. *)
let nat_trim a =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let t = top n in
  if t = n then a else Array.sub a 0 t

let nat_is_zero a = Array.length a = 0

let nat_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let nat_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(l) <- !carry;
  nat_trim r

(* Requires a >= b. *)
let nat_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  nat_trim r

let nat_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land limb_mask;
          carry := t lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land limb_mask;
          carry := t lsr limb_bits;
          incr k
        done
      end
    done;
    nat_trim r
  end

let karatsuba_threshold = 32

(* Karatsuba recursion: split at half the longer operand.  The three
   sub-products are combined as z2*B^2m + (z1 - z2 - z0)*B^m + z0. *)
let rec nat_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then
    nat_mul_school a b
  else begin
    let m = (Stdlib.max la lb + 1) / 2 in
    let lo x = nat_trim (Array.sub x 0 (Stdlib.min m (Array.length x))) in
    let hi x =
      let l = Array.length x in
      if l <= m then [||] else Array.sub x m (l - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = nat_mul a0 b0 in
    let z2 = nat_mul a1 b1 in
    let z1 = nat_mul (nat_add a0 a1) (nat_add b0 b1) in
    let mid = nat_sub (nat_sub z1 z2) z0 in
    let shift k x =
      if nat_is_zero x then [||]
      else begin
        let r = Array.make (Array.length x + k) 0 in
        Array.blit x 0 r k (Array.length x);
        r
      end
    in
    nat_add z0 (nat_add (shift m mid) (shift (2 * m) z2))
  end

let nat_shift_left a bits =
  if nat_is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if off = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl off) lor !carry in
        r.(i + limbs) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    nat_trim r
  end

let nat_shift_right a bits =
  if nat_is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then [||]
    else begin
      let l = la - limbs in
      let r = Array.make l 0 in
      if off = 0 then Array.blit a limbs r 0 l
      else
        for i = 0 to l - 1 do
          let lo = a.(i + limbs) lsr off in
          let hi =
            if i + limbs + 1 < la then
              (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask
            else 0
          in
          r.(i) <- lo lor hi
        done;
      nat_trim r
    end
  end

let nat_num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((la - 1) * limb_bits) + width 1
  end

(* Short division by a single limb 0 < d < 2^26. *)
let nat_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (nat_trim q, !r)

(* Knuth Algorithm D.  Requires [Array.length v >= 2] after trimming and
   [nat_compare u v >= 0]; both preconditions are arranged by the caller. *)
let nat_divmod_knuth u v =
  let n = Array.length v in
  (* D1: normalize so that the top limb of v has its high bit set. *)
  let shift = limb_bits - nat_num_bits [| v.(n - 1) |] in
  let v = nat_shift_left v shift in
  let u = nat_shift_left u shift in
  let m = Array.length u - n in
  (* Working copy of u with one extra high limb. *)
  let w = Array.make (Array.length u + 1) 0 in
  Array.blit u 0 w 0 (Array.length u);
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) in
  let vnext = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    (* D3: estimate the quotient digit from the top limbs. *)
    let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    if !qhat >= limb_base then begin
      qhat := limb_base - 1;
      rhat := num - (!qhat * vtop)
    end;
    let rec adjust () =
      if !qhat * vnext > (!rhat lsl limb_bits) lor w.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat < limb_base then adjust ()
      end
    in
    adjust ();
    (* D4: multiply and subtract. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let t = w.(j + i) - !borrow - (!qhat * v.(i)) in
      w.(j + i) <- t land limb_mask;
      borrow := -(t asr limb_bits)
    done;
    let t = w.(j + n) - !borrow in
    w.(j + n) <- t land limb_mask;
    (* D5/D6: if we over-subtracted, add the divisor back once. *)
    if t < 0 then begin
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(j + i) + v.(i) + !carry in
        w.(j + i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !carry) land limb_mask
    end;
    q.(j) <- !qhat
  done;
  let r = nat_trim (Array.sub w 0 n) in
  (nat_trim q, nat_shift_right r shift)

let nat_divmod u v =
  if nat_is_zero v then raise Division_by_zero
  else if nat_compare u v < 0 then ([||], u)
  else if Array.length v = 1 then begin
    let q, r = nat_divmod_small u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else nat_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = nat_trim mag in
  if nat_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n lsr limb_bits) ((n land limb_mask) :: acc)
    in
    let mag =
      if n = min_int then
        (* |min_int| = 2^62 is not representable as a positive int;
           2^62 = limb 2^(62 - 2*26) at index 2. *)
        [| 0; 0; 1 lsl (62 - (2 * limb_bits)) |]
      else Array.of_list (limbs (Stdlib.abs n) [])
    in
    make sign mag
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then nat_compare a.mag b.mag
  else nat_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (nat_add a.mag b.mag)
  else begin
    let c = nat_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (nat_sub a.mag b.mag)
    else make b.sign (nat_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (nat_mul a.mag b.mag)

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero
  else begin
    let q, r = nat_divmod a.mag b.mag in
    (make (a.sign * b.sign) q, make a.sign r)
  end

let div a b = fst (div_rem a b)
let rem a b = snd (div_rem a b)

let erem a m =
  let r = rem a m in
  if r.sign < 0 then add r (abs m) else r

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent"
  else begin
    let rec go acc b e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (e lsr 1)
      end
    in
    go one b e
  end

let num_bits t = nat_num_bits t.mag

let test_bit t i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr off) land 1 = 1

let shift_left t bits =
  if bits < 0 then invalid_arg "Bignum.shift_left"
  else make t.sign (nat_shift_left t.mag bits)

let shift_right t bits =
  if bits < 0 then invalid_arg "Bignum.shift_right"
  else make t.sign (nat_shift_right t.mag bits)

let is_even t = not (test_bit t 0)
let is_odd t = test_bit t 0

let bitwise name op a b =
  if a.sign < 0 || b.sign < 0 then
    invalid_arg (Printf.sprintf "Bignum.%s: negative operand" name)
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let l = Stdlib.max la lb in
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      let x = if i < la then a.mag.(i) else 0
      and y = if i < lb then b.mag.(i) else 0 in
      r.(i) <- op x y
    done;
    make 1 r
  end

let logand = bitwise "logand" ( land )
let logor = bitwise "logor" ( lor )
let logxor = bitwise "logxor" ( lxor )

let to_int_opt t =
  if t.sign = 0 then Some 0
  else if num_bits t > 62 then
    (* The one asymmetric case: |min_int| = 2^62 needs 63 magnitude bits. *)
    if t.sign = -1 && num_bits t = 63 && not (Array.exists (fun l -> l <> 0) (Array.sub t.mag 0 (Array.length t.mag - 1))) && t.mag.(Array.length t.mag - 1) = 1 lsl (62 - (2 * limb_bits))
    then Some min_int
    else None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bignum.to_int: value out of int range"

(* Decimal I/O processes 7-digit chunks: 10^7 < 2^26 keeps the short
   division/multiplication in single-limb range. *)
let dec_chunk = 10_000_000
let dec_chunk_digits = 7

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if nat_is_zero mag then acc
      else begin
        let q, r = nat_divmod_small mag dec_chunk in
        go q (r :: acc)
      end
    in
    match go t.mag [] with
    | [] -> "0"
    | first :: rest ->
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter
        (fun chunk ->
          Buffer.add_string buf (Printf.sprintf "%0*d" dec_chunk_digits chunk))
        rest;
      Buffer.contents buf
  end

let of_hex_body s =
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' -> -1
        | _ -> invalid_arg "Bignum.of_hex: invalid character"
      in
      if d >= 0 then v := add_int (shift_left !v 4) d)
    s;
  !v

let of_hex s =
  if s = "" then invalid_arg "Bignum.of_hex: empty string" else of_hex_body s

let of_string s =
  if s = "" then invalid_arg "Bignum.of_string: empty string"
  else begin
    let negative = s.[0] = '-' in
    let body = if negative || s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
    if body = "" then invalid_arg "Bignum.of_string: empty body"
    else begin
      let v =
        if String.length body > 2 && body.[0] = '0'
           && (body.[1] = 'x' || body.[1] = 'X')
        then of_hex_body (String.sub body 2 (String.length body - 2))
        else begin
          let v = ref zero in
          String.iter
            (fun c ->
              match c with
              | '0' .. '9' ->
                v := add_int (mul_int !v 10) (Char.code c - Char.code '0')
              | '_' -> ()
              | _ -> invalid_arg "Bignum.of_string: invalid character")
            body;
          !v
        end
      in
      if negative then neg v else v
    end
  end

let to_hex t =
  if t.sign = 0 then "0"
  else begin
    let bits = num_bits t in
    let digits = (bits + 3) / 4 in
    let buf = Buffer.create (digits + 1) in
    if t.sign < 0 then Buffer.add_char buf '-';
    let started = ref false in
    for i = digits - 1 downto 0 do
      let nibble =
        ((if test_bit t ((4 * i) + 3) then 8 else 0)
        lor (if test_bit t ((4 * i) + 2) then 4 else 0)
        lor (if test_bit t ((4 * i) + 1) then 2 else 0)
        lor if test_bit t (4 * i) then 1 else 0)
      in
      if nibble <> 0 || !started || i = 0 then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[nibble]
      end
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let v = ref zero in
  String.iter (fun c -> v := add_int (shift_left !v 8) (Char.code c)) s;
  !v

let to_bytes_be t =
  if t.sign < 0 then invalid_arg "Bignum.to_bytes_be: negative value"
  else if t.sign = 0 then ""
  else begin
    let nbytes = (num_bits t + 7) / 8 in
    let buf = Bytes.create nbytes in
    let v = ref t in
    let mask = of_int 255 in
    for i = nbytes - 1 downto 0 do
      Bytes.set buf i (Char.chr (to_int (logand !v mask)));
      v := shift_right !v 8
    done;
    Bytes.to_string buf
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_limbs t =
  if t.sign < 0 then invalid_arg "Bignum.to_limbs: negative value"
  else Array.copy t.mag

let of_limbs limbs =
  if Array.exists (fun l -> l < 0 || l >= limb_base) limbs then
    invalid_arg "Bignum.of_limbs: limb out of range"
  else make 1 (Array.copy limbs)
