(* Word-level Montgomery multiplication (CIOS — coarsely integrated
   operand scanning).  All inner-loop state lives in preallocated int
   arrays of 26-bit limbs; a multiplication performs a single fused
   scan with interleaved reduction, no intermediate bignum allocation.
   Intermediate products stay below 2^53, far inside the 63-bit int. *)

let limb_bits = Bignum.limb_bits
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type ctx = {
  m : Bignum.t;
  m_arr : int array;  (* k limbs of the modulus *)
  k : int;
  m0_prime : int;  (* -m^{-1} mod 2^26 *)
  r2 : int array;  (* R^2 mod m, for domain entry *)
  one_mont : int array;  (* R mod m *)
  one_plain : int array;  (* plain 1, for domain exit *)
  scratch : int array;  (* k+2 limbs of working space *)
  exit_buf : int array;  (* k limbs: reusable destination for domain exits *)
}

(* Inverse of an odd limb modulo 2^26 by Hensel lifting on native ints. *)
let inv_limb_mod_base m0 =
  let x = ref 1 in
  for _ = 1 to 5 do
    x := !x * (2 - (m0 * !x)) land limb_mask
  done;
  !x land limb_mask

let create m =
  if Bignum.compare m (Bignum.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus too small";
  if Bignum.is_even m then invalid_arg "Montgomery.create: modulus must be odd";
  let m_arr = Bignum.to_limbs m in
  let k = Array.length m_arr in
  let r_bits = k * limb_bits in
  let pad limbs =
    let out = Array.make k 0 in
    Array.blit limbs 0 out 0 (Array.length limbs);
    out
  in
  let r2 =
    pad (Bignum.to_limbs (Bignum.erem (Bignum.shift_left Bignum.one (2 * r_bits)) m))
  in
  let one_mont =
    pad (Bignum.to_limbs (Bignum.erem (Bignum.shift_left Bignum.one r_bits) m))
  in
  let one_plain = Array.make k 0 in
  one_plain.(0) <- 1;
  {
    m;
    m_arr;
    k;
    m0_prime = (limb_base - inv_limb_mod_base m_arr.(0)) land limb_mask;
    r2;
    one_mont;
    one_plain;
    scratch = Array.make (k + 2) 0;
    exit_buf = Array.make k 0;
  }

let modulus ctx = ctx.m

(* dst <- REDC(a * b); a, b and dst are k-limb arrays (dst may alias
   neither input).  Classic CIOS: interleave one limb of schoolbook
   multiplication with one limb of Montgomery reduction. *)
let mont_mul ctx dst a b =
  let k = ctx.k and m = ctx.m_arr and t = ctx.scratch in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    (* t += a.(i) * b *)
    let ai = a.(i) in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(j) + (ai * b.(j)) + !carry in
      t.(j) <- x land limb_mask;
      carry := x lsr limb_bits
    done;
    let x = t.(k) + !carry in
    t.(k) <- x land limb_mask;
    t.(k + 1) <- t.(k + 1) + (x lsr limb_bits);
    (* fold out the lowest limb: q = t0 * m0' mod base *)
    let q = t.(0) * ctx.m0_prime land limb_mask in
    let x = t.(0) + (q * m.(0)) in
    let carry = ref (x lsr limb_bits) in
    for j = 1 to k - 1 do
      let x = t.(j) + (q * m.(j)) + !carry in
      t.(j - 1) <- x land limb_mask;
      carry := x lsr limb_bits
    done;
    let x = t.(k) + !carry in
    t.(k - 1) <- x land limb_mask;
    let x = t.(k + 1) + (x lsr limb_bits) in
    t.(k) <- x;
    t.(k + 1) <- 0
  done;
  (* t.(0..k) holds the result, possibly >= m (t.(k) is 0 or 1). *)
  let ge =
    if t.(k) > 0 then true
    else begin
      let rec cmp j =
        if j < 0 then true (* equal *)
        else if t.(j) > m.(j) then true
        else if t.(j) < m.(j) then false
        else cmp (j - 1)
      in
      cmp (k - 1)
    end
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(j) - m.(j) - !borrow in
      if x < 0 then begin
        dst.(j) <- x + limb_base;
        borrow := 1
      end
      else begin
        dst.(j) <- x;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 dst 0 k

let to_array ctx x =
  let x = Bignum.erem x ctx.m in
  let limbs = Bignum.to_limbs x in
  let out = Array.make ctx.k 0 in
  Array.blit limbs 0 out 0 (Array.length limbs);
  out

(* Fixed 4-bit-window exponentiation: precompute b^0..b^15 in the
   Montgomery domain, then per window do 4 squarings and at most one
   table multiplication — ~25% fewer multiplications than binary
   square-and-multiply on random exponents. *)
let window_bits = 4

(* A fixed-exponent exponentiation plan.  The exponent's window digits
   are recoded exactly once, and every working array a single [pow]
   needs (16-entry table, accumulator, temporary, base conversion
   buffers) is preallocated here and reused across the whole batch —
   [pow_with] performs no allocation beyond the result bignum. *)
type powers = {
  p_ctx : ctx;
  e : Bignum.t;
  nbits : int;
  digits : int array;  (* digits.(w) = bits [w*4 .. w*4+3] of e; empty on the tiny path *)
  table : int array array;
  acc : int array;
  tmp : int array;
  b_arr : int array;
  b_mont : int array;
}

let powers ctx e =
  if Bignum.sign e < 0 then invalid_arg "Montgomery.powers: negative exponent";
  let nbits = Bignum.num_bits e in
  let digits =
    if nbits <= 2 * window_bits then [||]
    else begin
      let nwindows = (nbits + window_bits - 1) / window_bits in
      Array.init nwindows (fun w ->
          let digit = ref 0 in
          for bit = window_bits - 1 downto 0 do
            let i = (w * window_bits) + bit in
            digit := (!digit lsl 1) lor (if Bignum.test_bit e i then 1 else 0)
          done;
          !digit)
    end
  in
  {
    p_ctx = ctx;
    e;
    nbits;
    digits;
    (* The tiny path never consults the table; skip the 16 k-limb
       allocations so a plan built for one small exponent stays cheap. *)
    table =
      (if nbits <= 2 * window_bits then [||]
       else Array.init 16 (fun _ -> Array.make ctx.k 0));
    acc = Array.make ctx.k 0;
    tmp = Array.make ctx.k 0;
    b_arr = Array.make ctx.k 0;
    b_mont = Array.make ctx.k 0;
  }

(* Raise the in-domain base sitting in [plan.b_mont] to [plan.e],
   leaving the in-domain result in [plan.acc].  Shared by the bignum
   path ([pow_with], which enters and leaves the domain around it) and
   the resident path ([pow_with_resident], which does neither). *)
let pow_core plan =
  let ctx = plan.p_ctx in
  let k = ctx.k in
  let acc = plan.acc and tmp = plan.tmp in
  Array.blit ctx.one_mont 0 acc 0 k;
  if plan.nbits <= 2 * window_bits then
    (* Tiny exponent: plain binary, no table amortization possible. *)
    for i = plan.nbits - 1 downto 0 do
      mont_mul ctx tmp acc acc;
      Array.blit tmp 0 acc 0 k;
      if Bignum.test_bit plan.e i then begin
        mont_mul ctx tmp acc plan.b_mont;
        Array.blit tmp 0 acc 0 k
      end
    done
  else begin
    let table = plan.table in
    Array.blit ctx.one_mont 0 table.(0) 0 k;
    Array.blit plan.b_mont 0 table.(1) 0 k;
    for i = 2 to 15 do
      mont_mul ctx table.(i) table.(i - 1) plan.b_mont
    done;
    let nwindows = Array.length plan.digits in
    for w = nwindows - 1 downto 0 do
      if w < nwindows - 1 then
        for _ = 1 to window_bits do
          mont_mul ctx tmp acc acc;
          Array.blit tmp 0 acc 0 k
        done;
      let digit = plan.digits.(w) in
      if digit <> 0 then begin
        mont_mul ctx tmp acc table.(digit);
        Array.blit tmp 0 acc 0 k
      end
    done
  end

let pow_with plan b =
  let ctx = plan.p_ctx in
  let k = ctx.k in
  (* enter the domain: reduce into the reused base buffer, no fresh
     padding array per element. *)
  let limbs = Bignum.to_limbs (Bignum.erem b ctx.m) in
  Array.fill plan.b_arr 0 k 0;
  Array.blit limbs 0 plan.b_arr 0 (Array.length limbs);
  mont_mul ctx plan.b_mont plan.b_arr ctx.r2;
  pow_core plan;
  (* leave the Montgomery domain: multiply by 1. *)
  mont_mul ctx plan.tmp plan.acc ctx.one_plain;
  Bignum.of_limbs plan.tmp

let pow_many plan bs = List.map (pow_with plan) bs

(* ---- Montgomery-resident values ----------------------------------
   A [resident] is a value held in the residue representation [x·R mod
   m] (canonical, < m).  Chained exponentiations — the ∩ₛ/∪ₛ ring
   passes, where every node re-encrypts the same ciphertext vector —
   stay in-domain across the whole chain: [(x·R)^e] under REDC powering
   is exactly [(x^e)·R], so each hop skips both the erem/blit/R² entry
   and the exit multiplication that [pow_with] pays per call. *)

type resident = int array  (* k limbs, value·R mod m *)

let to_resident ctx x =
  let out = Array.make ctx.k 0 in
  mont_mul ctx out (to_array ctx x) ctx.r2;
  out

let of_resident ctx r =
  (* [of_limbs] copies, so the shared exit buffer never escapes — the
     hot per-hop view refresh allocates nothing but the result. *)
  mont_mul ctx ctx.exit_buf r ctx.one_plain;
  Bignum.of_limbs ctx.exit_buf

let mul_resident ctx a b =
  let out = Array.make ctx.k 0 in
  mont_mul ctx out a b;
  out

let pow_with_resident plan r =
  Array.blit r 0 plan.b_mont 0 plan.p_ctx.k;
  pow_core plan;
  Array.copy plan.acc

(* ---- Fixed-base windowed precomputation --------------------------
   For a long-lived base [b] (a Pohlig–Hellman generator, the
   accumulator seed x0, an RSA digest) precompute
   [rows.(j).(d-1) = b^(d·16^j)·R] for window digits d = 1..15.  An
   exponentiation is then one table multiplication per non-zero 4-bit
   window and NO squarings at all — the squarings were burned into the
   table once.  Rows grow on demand as wider exponents arrive; the
   seed of row j+1 is [b^(16^(j+1)) = rows.(j).(14) · seed_j]. *)

type base_table = {
  bt_ctx : ctx;
  bt_base : Bignum.t;  (* canonical base, the LRU cache key *)
  mutable rows : int array array array;
  mutable nrows : int;
  mutable next_seed : int array;  (* b^(16^nrows)·R *)
}

let base_table ctx b =
  let b = Bignum.erem b ctx.m in
  { bt_ctx = ctx; bt_base = b; rows = [||]; nrows = 0;
    next_seed = to_resident ctx b }

let table_modulus t = t.bt_ctx.m
let table_base t = t.bt_base
let table_windows t = t.nrows

let ensure_rows t n =
  let ctx = t.bt_ctx in
  let k = ctx.k in
  while t.nrows < n do
    let seed = t.next_seed in
    let row = Array.init 15 (fun _ -> Array.make k 0) in
    Array.blit seed 0 row.(0) 0 k;
    for d = 1 to 14 do
      mont_mul ctx row.(d) row.(d - 1) seed
    done;
    let nxt = Array.make k 0 in
    mont_mul ctx nxt row.(14) seed;
    if t.nrows = Array.length t.rows then begin
      let grown = Array.make (max 8 (2 * Array.length t.rows)) [||] in
      Array.blit t.rows 0 grown 0 t.nrows;
      t.rows <- grown
    end;
    t.rows.(t.nrows) <- row;
    t.nrows <- t.nrows + 1;
    t.next_seed <- nxt
  done

let pow_base t e =
  if Bignum.sign e < 0 then invalid_arg "Montgomery.pow_base: negative exponent";
  let ctx = t.bt_ctx in
  let k = ctx.k in
  let nbits = Bignum.num_bits e in
  let nwindows = (nbits + window_bits - 1) / window_bits in
  ensure_rows t nwindows;
  let acc = Array.make k 0 and tmp = Array.make k 0 in
  Array.blit ctx.one_mont 0 acc 0 k;
  for w = 0 to nwindows - 1 do
    let digit = ref 0 in
    for bit = window_bits - 1 downto 0 do
      let i = (w * window_bits) + bit in
      digit := (!digit lsl 1) lor (if Bignum.test_bit e i then 1 else 0)
    done;
    if !digit <> 0 then begin
      mont_mul ctx tmp acc t.rows.(w).(!digit - 1);
      Array.blit tmp 0 acc 0 k
    end
  done;
  mont_mul ctx tmp acc ctx.one_plain;
  Bignum.of_limbs tmp

(* ---- Simultaneous multi-exponentiation (Shamir's trick) ----------
   Joint windowing over several exponents shares the squaring chain:
   one squaring per bit position regardless of how many bases ride
   along.  [pow2] specializes the 2-base case with 2-bit joint windows
   (16-entry a^i·b^j table); [multi_pow] interleaves 1-bit subset-
   product tables in chunks of up to 6 bases. *)

let pow2 ctx a e1 b e2 =
  if Bignum.sign e1 < 0 || Bignum.sign e2 < 0 then
    invalid_arg "Montgomery.pow2: negative exponent";
  let k = ctx.k in
  let a_m = to_resident ctx a and b_m = to_resident ctx b in
  (* table.(j*4+i) = a^i · b^j · R *)
  let table = Array.init 16 (fun _ -> Array.make k 0) in
  Array.blit ctx.one_mont 0 table.(0) 0 k;
  Array.blit a_m 0 table.(1) 0 k;
  mont_mul ctx table.(2) table.(1) a_m;
  mont_mul ctx table.(3) table.(2) a_m;
  for j = 1 to 3 do
    mont_mul ctx table.(4 * j) table.(4 * (j - 1)) b_m;
    for i = 1 to 3 do
      mont_mul ctx table.((4 * j) + i) table.((4 * j) + i - 1) a_m
    done
  done;
  let nbits = max (Bignum.num_bits e1) (Bignum.num_bits e2) in
  let nwindows = (nbits + 1) / 2 in
  let acc = Array.make k 0 and tmp = Array.make k 0 in
  Array.blit ctx.one_mont 0 acc 0 k;
  let bit e i = if Bignum.test_bit e i then 1 else 0 in
  for w = nwindows - 1 downto 0 do
    if w < nwindows - 1 then begin
      mont_mul ctx tmp acc acc;
      Array.blit tmp 0 acc 0 k;
      mont_mul ctx tmp acc acc;
      Array.blit tmp 0 acc 0 k
    end;
    let i = (bit e1 ((2 * w) + 1) lsl 1) lor bit e1 (2 * w) in
    let j = (bit e2 ((2 * w) + 1) lsl 1) lor bit e2 (2 * w) in
    let idx = (j lsl 2) lor i in
    if idx <> 0 then begin
      mont_mul ctx tmp acc table.(idx);
      Array.blit tmp 0 acc 0 k
    end
  done;
  mont_mul ctx tmp acc ctx.one_plain;
  Bignum.of_limbs tmp

(* At 6 bases per chunk the subset table is 63 products — past that,
   table construction dominates the shared-squaring savings. *)
let multi_pow_chunk = 6

let multi_pow ctx pairs =
  List.iter
    (fun (_, e) ->
      if Bignum.sign e < 0 then
        invalid_arg "Montgomery.multi_pow: negative exponent")
    pairs;
  let pairs = Array.of_list pairs in
  let n = Array.length pairs in
  let k = ctx.k in
  let nchunks = (n + multi_pow_chunk - 1) / multi_pow_chunk in
  (* Per chunk, subset-product table indexed by a bitmask over the
     chunk's bases: tbl.(mask) = Π_{i ∈ mask} base_i · R. *)
  let tables =
    Array.init nchunks (fun c ->
        let lo = c * multi_pow_chunk in
        let cn = min multi_pow_chunk (n - lo) in
        let tbl = Array.make (1 lsl cn) [||] in
        tbl.(0) <- ctx.one_mont;
        for i = 0 to cn - 1 do
          tbl.(1 lsl i) <- to_resident ctx (fst pairs.(lo + i))
        done;
        for mask = 3 to (1 lsl cn) - 1 do
          let lowbit = mask land -mask in
          if mask <> lowbit then begin
            let dst = Array.make k 0 in
            mont_mul ctx dst tbl.(mask lxor lowbit) tbl.(lowbit);
            tbl.(mask) <- dst
          end
        done;
        tbl)
  in
  let nbits =
    Array.fold_left (fun acc (_, e) -> max acc (Bignum.num_bits e)) 0 pairs
  in
  let acc = Array.make k 0 and tmp = Array.make k 0 in
  Array.blit ctx.one_mont 0 acc 0 k;
  for i = nbits - 1 downto 0 do
    mont_mul ctx tmp acc acc;
    Array.blit tmp 0 acc 0 k;
    for c = 0 to nchunks - 1 do
      let lo = c * multi_pow_chunk in
      let cn = min multi_pow_chunk (n - lo) in
      let mask = ref 0 in
      for j = 0 to cn - 1 do
        if Bignum.test_bit (snd pairs.(lo + j)) i then
          mask := !mask lor (1 lsl j)
      done;
      if !mask <> 0 then begin
        mont_mul ctx tmp acc tables.(c).(!mask);
        Array.blit tmp 0 acc 0 k
      end
    done
  done;
  mont_mul ctx tmp acc ctx.one_plain;
  Bignum.of_limbs tmp

let pow ctx b e =
  if Bignum.sign e < 0 then invalid_arg "Montgomery.pow: negative exponent";
  (* Single exponentiation = a batch of one; sharing the plan machinery
     keeps the two paths value-identical by construction. *)
  pow_with (powers ctx e) b

let mul ctx a b =
  let a_arr = to_array ctx a and b_arr = to_array ctx b in
  let a_mont = Array.make ctx.k 0 and tmp = Array.make ctx.k 0 in
  mont_mul ctx a_mont a_arr ctx.r2;
  mont_mul ctx tmp a_mont b_arr;
  Bignum.of_limbs tmp
