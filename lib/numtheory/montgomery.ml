(* Word-level Montgomery multiplication (CIOS — coarsely integrated
   operand scanning).  All inner-loop state lives in preallocated int
   arrays of 26-bit limbs; a multiplication performs a single fused
   scan with interleaved reduction, no intermediate bignum allocation.
   Intermediate products stay below 2^53, far inside the 63-bit int. *)

let limb_bits = Bignum.limb_bits
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type ctx = {
  m : Bignum.t;
  m_arr : int array;  (* k limbs of the modulus *)
  k : int;
  m0_prime : int;  (* -m^{-1} mod 2^26 *)
  r2 : int array;  (* R^2 mod m, for domain entry *)
  one_mont : int array;  (* R mod m *)
  scratch : int array;  (* k+2 limbs of working space *)
}

(* Inverse of an odd limb modulo 2^26 by Hensel lifting on native ints. *)
let inv_limb_mod_base m0 =
  let x = ref 1 in
  for _ = 1 to 5 do
    x := !x * (2 - (m0 * !x)) land limb_mask
  done;
  !x land limb_mask

let create m =
  if Bignum.compare m (Bignum.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus too small";
  if Bignum.is_even m then invalid_arg "Montgomery.create: modulus must be odd";
  let m_arr = Bignum.to_limbs m in
  let k = Array.length m_arr in
  let r_bits = k * limb_bits in
  let pad limbs =
    let out = Array.make k 0 in
    Array.blit limbs 0 out 0 (Array.length limbs);
    out
  in
  let r2 =
    pad (Bignum.to_limbs (Bignum.erem (Bignum.shift_left Bignum.one (2 * r_bits)) m))
  in
  let one_mont =
    pad (Bignum.to_limbs (Bignum.erem (Bignum.shift_left Bignum.one r_bits) m))
  in
  {
    m;
    m_arr;
    k;
    m0_prime = (limb_base - inv_limb_mod_base m_arr.(0)) land limb_mask;
    r2;
    one_mont;
    scratch = Array.make (k + 2) 0;
  }

let modulus ctx = ctx.m

(* dst <- REDC(a * b); a, b and dst are k-limb arrays (dst may alias
   neither input).  Classic CIOS: interleave one limb of schoolbook
   multiplication with one limb of Montgomery reduction. *)
let mont_mul ctx dst a b =
  let k = ctx.k and m = ctx.m_arr and t = ctx.scratch in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    (* t += a.(i) * b *)
    let ai = a.(i) in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(j) + (ai * b.(j)) + !carry in
      t.(j) <- x land limb_mask;
      carry := x lsr limb_bits
    done;
    let x = t.(k) + !carry in
    t.(k) <- x land limb_mask;
    t.(k + 1) <- t.(k + 1) + (x lsr limb_bits);
    (* fold out the lowest limb: q = t0 * m0' mod base *)
    let q = t.(0) * ctx.m0_prime land limb_mask in
    let x = t.(0) + (q * m.(0)) in
    let carry = ref (x lsr limb_bits) in
    for j = 1 to k - 1 do
      let x = t.(j) + (q * m.(j)) + !carry in
      t.(j - 1) <- x land limb_mask;
      carry := x lsr limb_bits
    done;
    let x = t.(k) + !carry in
    t.(k - 1) <- x land limb_mask;
    let x = t.(k + 1) + (x lsr limb_bits) in
    t.(k) <- x;
    t.(k + 1) <- 0
  done;
  (* t.(0..k) holds the result, possibly >= m (t.(k) is 0 or 1). *)
  let ge =
    if t.(k) > 0 then true
    else begin
      let rec cmp j =
        if j < 0 then true (* equal *)
        else if t.(j) > m.(j) then true
        else if t.(j) < m.(j) then false
        else cmp (j - 1)
      in
      cmp (k - 1)
    end
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(j) - m.(j) - !borrow in
      if x < 0 then begin
        dst.(j) <- x + limb_base;
        borrow := 1
      end
      else begin
        dst.(j) <- x;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 dst 0 k

let to_array ctx x =
  let x = Bignum.erem x ctx.m in
  let limbs = Bignum.to_limbs x in
  let out = Array.make ctx.k 0 in
  Array.blit limbs 0 out 0 (Array.length limbs);
  out

(* Fixed 4-bit-window exponentiation: precompute b^0..b^15 in the
   Montgomery domain, then per window do 4 squarings and at most one
   table multiplication — ~25% fewer multiplications than binary
   square-and-multiply on random exponents. *)
let window_bits = 4

(* A fixed-exponent exponentiation plan.  The exponent's window digits
   are recoded exactly once, and every working array a single [pow]
   needs (16-entry table, accumulator, temporary, base conversion
   buffers) is preallocated here and reused across the whole batch —
   [pow_with] performs no allocation beyond the result bignum. *)
type powers = {
  p_ctx : ctx;
  e : Bignum.t;
  nbits : int;
  digits : int array;  (* digits.(w) = bits [w*4 .. w*4+3] of e; empty on the tiny path *)
  table : int array array;
  acc : int array;
  tmp : int array;
  b_arr : int array;
  b_mont : int array;
  one : int array;
}

let powers ctx e =
  if Bignum.sign e < 0 then invalid_arg "Montgomery.powers: negative exponent";
  let nbits = Bignum.num_bits e in
  let digits =
    if nbits <= 2 * window_bits then [||]
    else begin
      let nwindows = (nbits + window_bits - 1) / window_bits in
      Array.init nwindows (fun w ->
          let digit = ref 0 in
          for bit = window_bits - 1 downto 0 do
            let i = (w * window_bits) + bit in
            digit := (!digit lsl 1) lor (if Bignum.test_bit e i then 1 else 0)
          done;
          !digit)
    end
  in
  let one = Array.make ctx.k 0 in
  one.(0) <- 1;
  {
    p_ctx = ctx;
    e;
    nbits;
    digits;
    table = Array.init 16 (fun _ -> Array.make ctx.k 0);
    acc = Array.make ctx.k 0;
    tmp = Array.make ctx.k 0;
    b_arr = Array.make ctx.k 0;
    b_mont = Array.make ctx.k 0;
    one;
  }

let pow_with plan b =
  let ctx = plan.p_ctx in
  let k = ctx.k in
  (* enter the domain: reduce into the reused base buffer, no fresh
     padding array per element. *)
  let limbs = Bignum.to_limbs (Bignum.erem b ctx.m) in
  Array.fill plan.b_arr 0 k 0;
  Array.blit limbs 0 plan.b_arr 0 (Array.length limbs);
  mont_mul ctx plan.b_mont plan.b_arr ctx.r2;
  let acc = plan.acc and tmp = plan.tmp in
  Array.blit ctx.one_mont 0 acc 0 k;
  if plan.nbits <= 2 * window_bits then
    (* Tiny exponent: plain binary, no table amortization possible. *)
    for i = plan.nbits - 1 downto 0 do
      mont_mul ctx tmp acc acc;
      Array.blit tmp 0 acc 0 k;
      if Bignum.test_bit plan.e i then begin
        mont_mul ctx tmp acc plan.b_mont;
        Array.blit tmp 0 acc 0 k
      end
    done
  else begin
    let table = plan.table in
    Array.blit ctx.one_mont 0 table.(0) 0 k;
    Array.blit plan.b_mont 0 table.(1) 0 k;
    for i = 2 to 15 do
      mont_mul ctx table.(i) table.(i - 1) plan.b_mont
    done;
    let nwindows = Array.length plan.digits in
    for w = nwindows - 1 downto 0 do
      if w < nwindows - 1 then
        for _ = 1 to window_bits do
          mont_mul ctx tmp acc acc;
          Array.blit tmp 0 acc 0 k
        done;
      let digit = plan.digits.(w) in
      if digit <> 0 then begin
        mont_mul ctx tmp acc table.(digit);
        Array.blit tmp 0 acc 0 k
      end
    done
  end;
  (* leave the Montgomery domain: multiply by 1. *)
  mont_mul ctx tmp acc plan.one;
  Bignum.of_limbs tmp

let pow_many plan bs = List.map (pow_with plan) bs

let pow ctx b e =
  if Bignum.sign e < 0 then invalid_arg "Montgomery.pow: negative exponent";
  (* Single exponentiation = a batch of one; sharing the plan machinery
     keeps the two paths value-identical by construction. *)
  pow_with (powers ctx e) b

let mul ctx a b =
  let a_arr = to_array ctx a and b_arr = to_array ctx b in
  let a_mont = Array.make ctx.k 0 and tmp = Array.make ctx.k 0 in
  mont_mul ctx a_mont a_arr ctx.r2;
  mont_mul ctx tmp a_mont b_arr;
  Bignum.of_limbs tmp
