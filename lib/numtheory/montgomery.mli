(** Montgomery modular multiplication and exponentiation.

    For an odd modulus [m] of k limbs, work in the residue
    representation [x·R mod m] with [R = 2^(26k)]: each product is then
    reduced with REDC (two multiplications, a mask and a shift) instead
    of a Knuth division.  Exponentiation amortizes the one-time domain
    setup over hundreds of multiplications, which speeds every
    cryptographic primitive in this repository (Pohlig–Hellman,
    accumulator, RSA, Paillier) — {!Modular.pow} dispatches here
    automatically; the modexp ablation bench compares the two paths. *)

type ctx

val create : Bignum.t -> ctx
(** Precompute the domain constants for an odd modulus [m > 1].
    @raise Invalid_argument on even or tiny moduli. *)

val modulus : ctx -> Bignum.t

val pow : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** [pow ctx b e] is [b^e mod m] for [e >= 0].
    @raise Invalid_argument on negative exponents. *)

type powers
(** A fixed-exponent exponentiation plan: the exponent's 4-bit window
    digits recoded once, plus every scratch array a single
    exponentiation needs (16-entry table, accumulator, temporaries)
    preallocated for reuse across a batch of bases.  Ring encryption in
    the relaxed-SMC protocols raises whole sets to one key exponent, so
    the per-call recoding and allocation amortize to zero. *)

val powers : ctx -> Bignum.t -> powers
(** [powers ctx e] prepares a plan for computing [b^e mod m] over many
    bases [b].
    @raise Invalid_argument on a negative exponent. *)

val pow_with : powers -> Bignum.t -> Bignum.t
(** [pow_with plan b] is [b^e mod m] — value-identical to
    [pow ctx b e] ({!pow} itself is a batch of one). *)

val pow_many : powers -> Bignum.t list -> Bignum.t list
(** [pow_many plan bs] maps {!pow_with} over [bs], reusing the plan's
    scratch state; order is preserved. *)

val mul : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** One modular multiplication through the Montgomery domain (includes
    conversion; use {!pow} for chains). *)
