(** Montgomery modular multiplication and exponentiation.

    For an odd modulus [m] of k limbs, work in the residue
    representation [x·R mod m] with [R = 2^(26k)]: each product is then
    reduced with REDC (two multiplications, a mask and a shift) instead
    of a Knuth division.  Exponentiation amortizes the one-time domain
    setup over hundreds of multiplications, which speeds every
    cryptographic primitive in this repository (Pohlig–Hellman,
    accumulator, RSA, Paillier) — {!Modular.pow} dispatches here
    automatically; the modexp ablation bench compares the two paths. *)

type ctx

val create : Bignum.t -> ctx
(** Precompute the domain constants for an odd modulus [m > 1].
    @raise Invalid_argument on even or tiny moduli. *)

val modulus : ctx -> Bignum.t

val pow : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** [pow ctx b e] is [b^e mod m] for [e >= 0].
    @raise Invalid_argument on negative exponents. *)

type powers
(** A fixed-exponent exponentiation plan: the exponent's 4-bit window
    digits recoded once, plus every scratch array a single
    exponentiation needs (16-entry table, accumulator, temporaries)
    preallocated for reuse across a batch of bases.  Ring encryption in
    the relaxed-SMC protocols raises whole sets to one key exponent, so
    the per-call recoding and allocation amortize to zero. *)

val powers : ctx -> Bignum.t -> powers
(** [powers ctx e] prepares a plan for computing [b^e mod m] over many
    bases [b].
    @raise Invalid_argument on a negative exponent. *)

val pow_with : powers -> Bignum.t -> Bignum.t
(** [pow_with plan b] is [b^e mod m] — value-identical to
    [pow ctx b e] ({!pow} itself is a batch of one). *)

val pow_many : powers -> Bignum.t list -> Bignum.t list
(** [pow_many plan bs] maps {!pow_with} over [bs], reusing the plan's
    scratch state; order is preserved. *)

val mul : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** One modular multiplication through the Montgomery domain (includes
    conversion; use {!pow} for chains). *)

(** {2 Montgomery-resident values}

    A {!resident} holds a value in the residue representation
    [x·R mod m].  Ring passes that re-exponentiate the same ciphertext
    at every hop convert once on entry, chain every hop's
    exponentiation in-domain ([(x·R)^e] REDC-powers to exactly
    [(x^e)·R]), and convert back once — skipping the per-op domain
    entry (erem + R² multiply) and exit that {!pow_with} pays. *)

type resident

val to_resident : ctx -> Bignum.t -> resident
(** Enter the domain: [to_resident ctx x] holds [x mod m]. *)

val of_resident : ctx -> resident -> Bignum.t
(** Leave the domain; the result is canonical in [\[0, m)] and
    identical to the bignum the same op-chain would have produced. *)

val mul_resident : ctx -> resident -> resident -> resident
(** In-domain product; one REDC multiplication, no conversions. *)

val pow_with_resident : powers -> resident -> resident
(** [pow_with_resident plan r] raises an in-domain value to the plan's
    exponent, staying in-domain — the core loop of {!pow_with} without
    the entry and exit conversions. *)

(** {2 Fixed-base windowed precomputation}

    The dual of the fixed-exponent {!powers} plan: for a long-lived
    base (Pohlig–Hellman generator, accumulator seed, threshold-RSA
    digest) precompute [b^(d·16^j)·R] for every 4-bit window digit.
    An exponentiation then costs one table multiplication per non-zero
    window and zero squarings.  Tables grow on demand as wider
    exponents arrive and are cached LRU by {!Modular.pow_base}. *)

type base_table

val base_table : ctx -> Bignum.t -> base_table
(** Start an (initially empty) window table for base [b]; rows are
    materialized lazily by {!pow_base}. *)

val pow_base : base_table -> Bignum.t -> Bignum.t
(** [pow_base t e] is [b^e mod m] for [e >= 0] — value-identical to
    [pow ctx b e].
    @raise Invalid_argument on a negative exponent. *)

val table_modulus : base_table -> Bignum.t
val table_base : base_table -> Bignum.t
(** Cache keys: the table's modulus and canonical base [b mod m]. *)

val table_windows : base_table -> int
(** Number of 4-bit window rows materialized so far (monotone; grows
    with the widest exponent seen). *)

(** {2 Simultaneous multi-exponentiation (Shamir's trick)}

    Joint windowing shares one squaring chain across several bases:
    [a^e1·b^e2] costs barely more than the wider single
    exponentiation.  Used by accumulator witness verification and
    threshold-RSA share combination. *)

val pow2 : ctx -> Bignum.t -> Bignum.t -> Bignum.t -> Bignum.t -> Bignum.t
(** [pow2 ctx a e1 b e2] is [a^e1 · b^e2 mod m] via 2-bit joint
    windows over a 16-entry [a^i·b^j] table.
    @raise Invalid_argument on negative exponents. *)

val multi_pow : ctx -> (Bignum.t * Bignum.t) list -> Bignum.t
(** [multi_pow ctx \[(b1, e1); ...\]] is [Π bi^ei mod m], interleaving
    subset-product tables in chunks of up to 6 bases over a single
    shared squaring chain.  [multi_pow ctx \[\] = 1].
    @raise Invalid_argument on negative exponents. *)
