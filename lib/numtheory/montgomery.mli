(** Montgomery modular multiplication and exponentiation.

    For an odd modulus [m] of k limbs, work in the residue
    representation [x·R mod m] with [R = 2^(26k)]: each product is then
    reduced with REDC (two multiplications, a mask and a shift) instead
    of a Knuth division.  Exponentiation amortizes the one-time domain
    setup over hundreds of multiplications, which speeds every
    cryptographic primitive in this repository (Pohlig–Hellman,
    accumulator, RSA, Paillier) — {!Modular.pow} dispatches here
    automatically; the modexp ablation bench compares the two paths. *)

type ctx

val create : Bignum.t -> ctx
(** Precompute the domain constants for an odd modulus [m > 1].
    @raise Invalid_argument on even or tiny moduli. *)

val modulus : ctx -> Bignum.t

val pow : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** [pow ctx b e] is [b^e mod m] for [e >= 0].
    @raise Invalid_argument on negative exponents. *)

val mul : ctx -> Bignum.t -> Bignum.t -> Bignum.t
(** One modular multiplication through the Montgomery domain (includes
    conversion; use {!pow} for chains). *)
