(** Arbitrary-precision signed integers.

    Pure-OCaml implementation (no C stubs, no [zarith]) used by every
    cryptographic substrate in this repository: Pohlig–Hellman commutative
    encryption, Shamir secret sharing and the RSA-style one-way
    accumulator all compute over multi-hundred-bit moduli.

    Magnitudes are little-endian arrays of 26-bit limbs, so every
    intermediate product fits comfortably in a 63-bit OCaml [int].
    Division is Knuth's Algorithm D; multiplication switches from
    schoolbook to Karatsuba above a size threshold. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in an OCaml [int]. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Decimal, with optional leading ["-"]; [0x]-prefixed hex also accepted.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val of_hex : string -> t
(** Hexadecimal (no [0x] prefix required, case-insensitive). *)

val to_hex : t -> string
(** Lower-case hexadecimal, no prefix; ["0"] for zero. *)

val of_bytes_be : string -> t
(** Big-endian unsigned byte-string interpretation (as used when hashing). *)

val to_bytes_be : t -> string
(** Minimal big-endian unsigned byte string; [""] for zero.
    @raise Invalid_argument on negative values. *)

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val div_rem : t -> t -> t * t
(** Truncated division, like OCaml's [( / )] and [( mod )] on [int]:
    the remainder has the sign of the dividend.
    @raise Division_by_zero if the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: [erem a m] is in [\[0, |m|)].  This is the
    operation used throughout the modular-arithmetic layer. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0].  @raise Invalid_argument on negative [e]. *)

(** {1 Bit operations} *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val test_bit : t -> int -> bool
(** Bit [i] of the magnitude (i.e. of [abs t]). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (sign preserved). *)

val is_even : t -> bool
val is_odd : t -> bool

val logand : t -> t -> t
(** Bitwise AND of magnitudes of non-negative values.
    @raise Invalid_argument on negative operands. *)

val logor : t -> t -> t
val logxor : t -> t -> t

(** {1 Infix operators}

    Opened locally as [Bignum.Infix.(...)] in computation-heavy code. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit

(** {1 Limb access}

    For word-level algorithms (Montgomery CIOS) that need to bypass the
    allocation cost of composed bignum operations. *)

val limb_bits : int
(** Bits per limb (26). *)

val to_limbs : t -> int array
(** Little-endian magnitude limbs (a copy; no leading zeros; empty for
    zero).  @raise Invalid_argument on negative values. *)

val of_limbs : int array -> t
(** Non-negative value from little-endian limbs; leading zeros allowed.
    @raise Invalid_argument if a limb is outside [\[0, 2^26)]. *)
