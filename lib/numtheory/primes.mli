(** Probabilistic primality testing and prime generation.

    The Pohlig–Hellman cipher (paper §3, ref [21]) needs a prime [p]
    such that [p - 1] has a large prime factor; we generate *safe primes*
    ([p = 2q + 1] with [q] prime), which satisfy that requirement in the
    strongest form.  The one-way accumulator (paper §4.1, ref [26]) needs
    an RSA modulus [n = p*q]. *)

val is_probable_prime : ?rounds:int -> Prng.t -> Bignum.t -> bool
(** Miller–Rabin with [rounds] random witnesses (default 24, error
    probability below 4^-24), preceded by small-prime trial division. *)

val random_prime : ?rounds:int -> Prng.t -> bits:int -> Bignum.t
(** Uniform random prime with exactly [bits] bits (top bit set).
    Requires [bits >= 2]. *)

val random_safe_prime : ?rounds:int -> Prng.t -> bits:int -> Bignum.t
(** Safe prime [p = 2q + 1] with [p] of exactly [bits] bits.
    Requires [bits >= 4].  Expensive for large [bits] — benches default
    to 128–256-bit moduli for sweeps. *)

val next_prime : ?rounds:int -> Prng.t -> Bignum.t -> Bignum.t
(** Smallest probable prime strictly greater than the argument. *)

val rsa_modulus : ?rounds:int -> Prng.t -> bits:int -> Bignum.t * Bignum.t * Bignum.t
(** [rsa_modulus rng ~bits] is [(n, p, q)] with [n = p*q] of roughly
    [bits] bits, [p <> q] random primes of [bits/2] bits each. *)

val small_primes : int list
(** The primes below 1000, used for trial division and as fixture data. *)
