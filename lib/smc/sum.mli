(** Secure sum Σₛ and weighted sum (paper §3.5).

    Each party P_i hides its value a_i in a random degree-(k-1)
    polynomial f_i with f_i(0) = a_i and sends the share f_i(x_j) to
    every P_j.  Each P_j locally sums the shares it received — a share of
    F = Σ f_i — and forwards it to the receiver, which reconstructs
    F(0) = Σ a_i from any k shares.  No subset of fewer than k parties
    learns anything about a foreign a_i. *)

open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

val run :
  net:Net.Network.t ->
  rng:Prng.t ->
  p:Bignum.t ->
  k:int ->
  receiver:Net.Node_id.t ->
  party list ->
  Bignum.t
(** Σ values mod [p].  [k] is the reconstruction threshold, [1 <= k <= n].
    Values must lie in [\[0, p)]; pick [p] well above any reachable sum.
    @raise Invalid_argument on bad [k] or out-of-range values. *)

val run_weighted :
  net:Net.Network.t ->
  rng:Prng.t ->
  p:Bignum.t ->
  k:int ->
  receiver:Net.Node_id.t ->
  weights:(Net.Node_id.t * Bignum.t) list ->
  party list ->
  Bignum.t
(** Σ αᵢ·aᵢ mod [p] with public weights αᵢ (§3.5, final paragraph).
    Parties without a listed weight default to weight 1. *)

val run_ttp_coordinated :
  net:Net.Network.t ->
  rng:Prng.t ->
  public:Crypto.Paillier.public ->
  secret:Crypto.Paillier.secret ->
  coordinator:Net.Node_id.t ->
  receiver:Net.Node_id.t ->
  party list ->
  Bignum.t
(** The §3 TTP-coordinated variant ("the cost … will be greatly reduced
    if a TTP can coordinate the computation"): each party Paillier-
    encrypts its value under the receiver's key and sends one ciphertext
    to the blind coordinator, which homomorphically folds them and
    forwards a single ciphertext to the receiver.  n+1 messages total
    (vs. the Shamir protocol's ~n²); the coordinator sees only
    ciphertexts.  Values must lie in [\[0, n)]. *)

val naive :
  net:Net.Network.t -> coordinator:Net.Node_id.t -> party list -> Bignum.t
(** Non-private baseline: plaintext values shipped to a coordinator. *)
