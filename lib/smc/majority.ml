type vote = Approve | Reject

let vote_to_string = function Approve -> "approve" | Reject -> "reject"

type outcome = {
  verdict : vote option;
  approvals : int;
  rejections : int;
  flagged : Net.Node_id.t list;
}

let broadcast net nodes ~src ~label ~bytes =
  List.iter
    (fun dst ->
      if not (Net.Node_id.equal src dst) then
        Net.Network.send_exn net ~src ~dst ~label ~bytes)
    nodes

let run ~net ~rng ~votes ?(cheaters = []) () =
  if List.length votes < 2 then
    invalid_arg "Majority.run: need at least 2 voters";
  let nodes = List.map fst votes in
  if
    List.length (List.sort_uniq Net.Node_id.compare nodes)
    <> List.length nodes
  then invalid_arg "Majority.run: duplicate voters";
  (* Phase 1: commitments. *)
  let committed =
    List.map
      (fun (node, vote) ->
        let commitment, opening =
          Crypto.Commitment.commit rng (vote_to_string vote)
        in
        broadcast net nodes ~src:node ~label:"majority:commit" ~bytes:32;
        List.iter
          (fun dst ->
            Proto_util.observe net ~node:dst
              ~sensitivity:Net.Ledger.Ciphertext ~tag:"majority:commit"
              (Crypto.Commitment.to_hex commitment))
          nodes;
        (node, vote, commitment, opening))
      votes
  in
  Proto_util.round net;
  (* Phase 2: openings.  A cheater reveals a switched vote, which cannot
     open its own commitment. *)
  let opened =
    List.map
      (fun (node, vote, commitment, honest_opening) ->
        let opening =
          match
            List.find_opt (fun (n, _) -> Net.Node_id.equal n node) cheaters
          with
          | Some (_, switched) ->
            { honest_opening with
              Crypto.Commitment.value = vote_to_string switched }
          | None -> honest_opening
        in
        broadcast net nodes ~src:node ~label:"majority:reveal"
          ~bytes:(String.length opening.Crypto.Commitment.value + 32);
        (* Opened votes are public by design: every voter sees them. *)
        List.iter
          (fun dst ->
            Proto_util.observe net ~node:dst
              ~sensitivity:Net.Ledger.Plaintext ~tag:"majority:reveal"
              opening.Crypto.Commitment.value)
          nodes;
        (node, vote, commitment, opening))
      committed
  in
  Proto_util.round net;
  (* Every node verifies every opening; failures are flagged and their
     votes discarded. *)
  let valid, flagged =
    List.partition
      (fun (_, _, commitment, opening) ->
        Crypto.Commitment.verify commitment opening)
      opened
  in
  let flagged = List.map (fun (node, _, _, _) -> node) flagged in
  let count v =
    List.length
      (List.filter
         (fun (_, _, _, opening) ->
           String.equal opening.Crypto.Commitment.value (vote_to_string v))
         valid)
  in
  let approvals = count Approve and rejections = count Reject in
  let verdict =
    if approvals > rejections then Some Approve
    else if rejections > approvals then Some Reject
    else None
  in
  List.iter
    (fun node ->
      Proto_util.observe net ~node ~sensitivity:Net.Ledger.Aggregate
        ~tag:"majority:verdict"
        (match verdict with
        | Some v -> vote_to_string v
        | None -> "tie"))
    nodes;
  { verdict; approvals; rejections; flagged }
