(** Yao's millionaire protocol (the paper's ref [10], FOCS 1982).

    The classical two-party comparison the paper cites as the origin of
    multiparty private computation: Alice and Bob learn who is richer
    and nothing else.  Textbook construction over RSA:

    + Bob encrypts a random [x] under Alice's public key and sends
      [E_A(x) − j] (his wealth [j] blinded into the ciphertext);
    + Alice decrypts the [N] candidates [D_A(m + u)], reduces them by a
      random prime into distinguishable residues, adds 1 to the residues
      above her own wealth [i], and returns the sequence;
    + Bob looks up position [j]: it still matches [x mod p] iff
      [i < j]... i.e. the comparison bit pops out for Bob alone, who
      announces it.

    Wealth values must lie in the small public domain [1..domain] — the
    protocol is linear in the domain size, which is exactly the cost
    blow-up (O(N) decryptions and O(N) transferred residues per single
    comparison) that motivates the paper's relaxed blinded-TTP
    comparison (§3.3); the cost bench puts them side by side. *)

open Numtheory

val run :
  net:Net.Network.t ->
  rng:Prng.t ->
  ?bits:int ->
  domain:int ->
  alice:Net.Node_id.t * int ->
  bob:Net.Node_id.t * int ->
  unit ->
  bool
(** [run ... ~alice:(a, i) ~bob:(b, j)] is [true] iff [i >= j] ("Alice
    is at least as rich").  [bits] sizes Alice's RSA modulus (default
    192).  @raise Invalid_argument if a wealth is outside
    [\[1, domain\]] or the domain is smaller than 2. *)
