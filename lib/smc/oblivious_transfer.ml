open Numtheory

let transfer ~net ~rng ?(bits = 192) ~sender:(sender_node, m0, m1)
    ~receiver ~choice () =
  let secret = Crypto.Rsa.generate rng ~bits () in
  let public = Crypto.Rsa.public secret in
  let n = public.Crypto.Rsa.n in
  let check m =
    if Bignum.sign m < 0 || Bignum.compare m n >= 0 then
      invalid_arg "Oblivious_transfer: message outside [0, n)"
  in
  check m0;
  check m1;
  let wire = Proto_util.bignum_wire_size in
  (* 1. Sender publishes the key and the two random points. *)
  let x0 = Prng.bignum_below rng n and x1 = Prng.bignum_below rng n in
  Net.Network.send_exn net ~src:sender_node ~dst:receiver ~label:"ot:setup"
    ~bytes:(wire n + wire x0 + wire x1);
  Proto_util.round net;
  (* 2. Receiver blinds its choice. *)
  let k = Prng.bignum_below rng n in
  let xb = if choice then x1 else x0 in
  let v = Modular.add xb (Crypto.Rsa.encrypt_raw public k) ~m:n in
  Net.Network.send_exn net ~src:receiver ~dst:sender_node ~label:"ot:choice"
    ~bytes:(wire v);
  Proto_util.observe net ~node:sender_node ~sensitivity:Net.Ledger.Blinded
    ~tag:"ot:choice" (Bignum.to_hex v);
  Proto_util.round net;
  (* 3. Sender cannot tell which k is real; it masks both messages. *)
  let k0 = Crypto.Rsa.decrypt_raw secret (Modular.sub v x0 ~m:n) in
  let k1 = Crypto.Rsa.decrypt_raw secret (Modular.sub v x1 ~m:n) in
  let c0 = Modular.add m0 k0 ~m:n and c1 = Modular.add m1 k1 ~m:n in
  Net.Network.send_exn net ~src:sender_node ~dst:receiver ~label:"ot:masked"
    ~bytes:(wire c0 + wire c1);
  List.iter
    (fun c ->
      Proto_util.observe net ~node:receiver
        ~sensitivity:Net.Ledger.Ciphertext ~tag:"ot:masked" (Bignum.to_hex c))
    [ c0; c1 ];
  Proto_util.round net;
  (* 4. Receiver unmasks its slot. *)
  let cb = if choice then c1 else c0 in
  let m = Modular.sub cb k ~m:n in
  Proto_util.observe net ~node:receiver ~sensitivity:Net.Ledger.Aggregate
    ~tag:"ot:received" (Bignum.to_hex m);
  m

let transfer_strings ~net ~rng ?(bits = 192) ~sender:(sender_node, s0, s1)
    ~receiver ~choice () =
  (* Length-prefix so the byte decoding is unambiguous. *)
  let encode s =
    Bignum.of_bytes_be (Printf.sprintf "%c%s" (Char.chr (String.length s)) s)
  in
  let decode v =
    let bytes = Bignum.to_bytes_be v in
    if bytes = "" then ""
    else String.sub bytes 1 (Char.code bytes.[0])
  in
  if String.length s0 > 20 || String.length s1 > 20 then
    invalid_arg "Oblivious_transfer.transfer_strings: payload too long";
  decode
    (transfer ~net ~rng ~bits
       ~sender:(sender_node, encode s0, encode s1)
       ~receiver ~choice ())

let and_gate ~net ~rng ?(bits = 128) ~left:(left_node, a)
    ~right:(right_node, b) () =
  let bit v = if v then Bignum.one else Bignum.zero in
  let result =
    transfer ~net ~rng ~bits
      ~sender:(left_node, bit (a && false), bit (a && true))
      ~receiver:right_node ~choice:b ()
  in
  Bignum.equal result Bignum.one
