(** Secure set union ∪ₛ (paper §3.4).

    Same ring-encryption pass as intersection; the receiver then keeps
    one copy of each distinct fully-encrypted element and has each kept
    ciphertext peeled by every party in turn (a decode ring).  The
    receiver ends up with the plaintext union but — because the kept
    ciphertexts are shuffled before decoding — without learning which
    party contributed which element ("without revealing the owner(s) of
    each of the items"). *)

type party = { node : Net.Node_id.t; set : string list }

val run :
  net:Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  rng:Numtheory.Prng.t ->
  receiver:Net.Node_id.t ->
  party list ->
  string list
(** Sorted plaintext union, delivered to [receiver].
    @raise Invalid_argument with fewer than 2 parties. *)

val cardinality :
  net:Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  receiver:Net.Node_id.t ->
  party list ->
  int
(** Size-only variant (ref [20]): the ring pass runs as usual but the
    decode ring is skipped entirely — the receiver just counts distinct
    fully-encrypted elements, learning |S1 ∪ … ∪ Sn| and nothing else. *)

val naive :
  net:Net.Network.t -> coordinator:Net.Node_id.t -> party list -> string list
(** Non-private baseline: raw sets shipped to a coordinator. *)
