(** Shared plumbing for the relaxed-SMC protocols (paper §3). *)

open Numtheory

val bignum_wire_size : Bignum.t -> int
(** Bytes a group element occupies on the wire (minimal big-endian). *)

val ring_next : Net.Node_id.t list -> Net.Node_id.t -> Net.Node_id.t
(** Successor in ring order; the list must contain the node.
    @raise Invalid_argument otherwise. *)

val shuffle : Prng.t -> 'a list -> 'a list
(** Fisher–Yates; used to unlink decoded set elements from their owners
    in the secure-union decode phase. *)

val span : Net.Network.t -> string -> (unit -> 'a) -> 'a
(** Run one protocol phase inside an {!Obs.Trace} span whose clock is
    the network's virtual time (so span durations are simulated
    protocol latency). *)

val send_bignums :
  Net.Network.t ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  Bignum.t list ->
  unit
(** Account one message carrying the given group elements and record a
    [Ciphertext] observation of each at the destination.
    @raise Net.Network.Partitioned on non-delivery. *)
