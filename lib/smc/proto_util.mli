(** Shared plumbing for the relaxed-SMC protocols (paper §3). *)

open Numtheory

val bignum_wire_size : Bignum.t -> int
(** Bytes a group element occupies on the wire (minimal big-endian). *)

val ring_next : Net.Node_id.t list -> Net.Node_id.t -> Net.Node_id.t
(** Successor in ring order; the list must contain the node.
    @raise Invalid_argument otherwise. *)

val shuffle : Prng.t -> 'a list -> 'a list
(** Fisher–Yates; used to unlink decoded set elements from their owners
    in the secure-union decode phase. *)

val span : Net.Network.t -> string -> (unit -> 'a) -> 'a
(** Run one protocol phase inside an {!Obs.Trace} span whose clock is
    the network's virtual time (so span durations are simulated
    protocol latency). *)

val round : ?label:string -> Net.Network.t -> unit
(** Protocol round barrier: fence the ambient
    {!Numtheory.Domain_pool} (joining any farmed modexp chunks still in
    flight), then {!Net.Network.round}.  All SMC protocol modules mark
    their synchronization points through this, so the §3 round counters
    are unchanged while compute is guaranteed quiescent whenever
    virtual time advances. *)

type wire_event = {
  node : Net.Node_id.t;  (** who observed the value *)
  sensitivity : Net.Ledger.sensitivity;
  tag : string;
  value : string;
  phase : string list;
      (** open {!Obs.Trace} span names when the value was observed,
          outermost first — e.g. [\["smc.sum"; "smc.sum.exchange"\]] *)
}

val transcript_hook : (wire_event -> unit) option ref
(** When set, every {!observe} call (i.e. every per-node value
    observation a protocol makes) is also delivered here, stamped with
    the current span path.  The spec layer's transcript recorder is the
    intended consumer; protocol code never reads it. *)

val with_transcript_hook : (wire_event -> unit) -> (unit -> 'a) -> 'a
(** Install [hook] for the extent of the thunk, restoring whatever hook
    was installed before (hooks nest but do not stack: the innermost
    wins). *)

val observe :
  Net.Network.t ->
  node:Net.Node_id.t ->
  sensitivity:Net.Ledger.sensitivity ->
  tag:string ->
  string ->
  unit
(** Record a per-node value observation in the network's {!Net.Ledger}
    {e and} mirror it to {!transcript_hook}.  All protocol modules route
    their ledger writes through this, so an installed recorder sees the
    complete per-participant view of the transcript. *)

val deliver :
  Net.Network.t ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  Bignum.t list ->
  Bignum.t list
(** Byzantine layer: the payload [dst] actually receives.  Applies the
    installed {!Net.Adversary} (if any) and cross-checks the pass with
    the installed {!Round_guard} (if any), recording the commitment as
    a [Metadata] observation tagged ["byz:commit:<label>"] at [dst].
    With neither installed this is the identity — the honest path is
    byte-identical.  Does {e not} account any network traffic. *)

val deliver_share :
  Net.Network.t ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  Bignum.t ->
  Bignum.t
(** {!deliver} for a single Shamir share ordinate.
    @raise Net.Network.Partitioned if an adversary drops the share. *)

val send_bignums :
  Net.Network.t ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  Bignum.t list ->
  Bignum.t list
(** Account one message carrying the given group elements and record a
    [Ciphertext] observation of each at the destination; returns the
    payload as delivered (identical to the argument unless a Byzantine
    adversary is installed — see {!deliver}).  Protocol code must
    continue with the returned payload, exactly as a real receiver
    would.
    @raise Net.Network.Partitioned on non-delivery. *)

val send_residents :
  Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  Crypto.Commutative.resident list ->
  Crypto.Commutative.resident list
(** {!send_bignums} for Montgomery-resident ciphertexts: the wire
    carries the canonical views (bytes, ledger observations, adversary
    and round-guard interplay all byte-identical), while the residue
    forms are carried across the hop for free on the honest path.  A
    tampered or shortened delivery re-enters the domain from the
    payload that actually arrived.
    @raise Net.Network.Partitioned on non-delivery. *)
