(** Secure set intersection ∩ₛ (paper §3.1, Figure 4).

    Each party encodes its local set into the shared commutative-cipher
    domain, encrypts under its own key and sends it around the ring; on
    receipt of a foreign set a party adds its own encryption layer and
    relays.  After [n-1] hops every set is encrypted by every party, and
    under a commutative cipher two fully-encrypted elements are equal iff
    their plaintexts are equal — so the intersection can be computed on
    ciphertexts.

    A receiver that owns one of the input sets can map matched
    ciphertexts back to plaintext through the correspondence with its own
    set (it knows its own elements); this mirrors the paper's "P_w gets
    to know which items are in the intersection set, if nodes in P_w have
    access to the raw log data". *)

open Numtheory

type party = { node : Net.Node_id.t; set : string list }

type result = {
  intersection : string list;
      (** Plaintext intersection, sorted; resolved via the receiver's own
          correspondence table. *)
  encrypted_by_all : (Net.Node_id.t * Bignum.t list) list;
      (** Per origin party, its set after all encryption layers — the
          final state in Figure 4. *)
}

val run :
  net:Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  receiver:Net.Node_id.t ->
  party list ->
  result
(** @raise Invalid_argument with fewer than 2 parties, or when the
    [receiver] is not among the parties (it needs raw data for plaintext
    resolution). *)

val cardinality :
  net:Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  receiver:Net.Node_id.t ->
  party list ->
  int
(** Size-only variant — "secure computation of the size of set
    intersection", the very use-case §3 cites from ref [20].  Identical
    ring pass, but the receiver only counts matching ciphertexts and
    never resolves plaintexts, so it may be an outside observer (it need
    not be a party, unlike {!run}). *)

val naive :
  net:Net.Network.t ->
  coordinator:Net.Node_id.t ->
  party list ->
  string list
(** Non-private baseline: every party ships its raw set to a coordinator
    that intersects in the clear.  Used as the correctness oracle in
    tests and the privacy/cost contrast in benches. *)
