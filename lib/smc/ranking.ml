open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

type verdict = {
  max_holder : Net.Node_id.t;
  min_holder : Net.Node_id.t;
  ranks : (Net.Node_id.t * int) list;
}

let verdict_of_values values =
  (* values : (node, comparable) list; rank 1 = smallest, ties share. *)
  let sorted = List.sort (fun (_, a) (_, b) -> Bignum.compare a b) values in
  let ranks =
    let rec go idx prev acc = function
      | [] -> List.rev acc
      | (node, v) :: rest ->
        let rank =
          match prev with
          | Some (pv, prank) when Bignum.equal pv v -> prank
          | _ -> idx
        in
        go (idx + 1) (Some (v, rank)) ((node, rank) :: acc) rest
    in
    go 1 None [] sorted
  in
  let min_holder = fst (List.hd sorted) in
  let max_holder =
    (* Last in sort order; for ties any maximal holder is acceptable. *)
    fst (List.nth sorted (List.length sorted - 1))
  in
  { max_holder; min_holder; ranks }

let broadcast_negotiation net nodes =
  (* Pairwise agreement on the shared transform, modeled as a ring pass. *)
  let rec go = function
    | a :: (b :: _ as rest) ->
      Net.Network.send_exn net ~src:a ~dst:b ~label:"ranking:negotiate"
        ~bytes:16;
      go rest
    | _ -> ()
  in
  go nodes;
  Proto_util.round ~label:"ranking" net

let run ~net ~rng ~ttp parties =
  if List.length parties < 2 then
    invalid_arg "Ranking.run: need at least 2 parties";
  Proto_util.span net "smc.ranking" (fun () ->
      let nodes = List.map (fun party -> party.node) parties in
      Proto_util.span net "smc.ranking.exchange" (fun () ->
          broadcast_negotiation net nodes);
      let blinded =
        Proto_util.span net "smc.ranking.transform" (fun () ->
            let blind = Crypto.Blinding.generate_monotone rng ~bits:64 in
            List.iter
              (fun party ->
                Proto_util.observe net ~node:party.node
                  ~sensitivity:Net.Ledger.Plaintext ~tag:"ranking:own-value"
                  (Bignum.to_string party.value))
              parties;
            (* Every party applies the same agreed map, so the whole
               column blinds as one batch pass before the submissions. *)
            let ws =
              Crypto.Blinding.apply_monotone_many blind
                (List.map (fun party -> party.value) parties)
            in
            let blinded =
              List.map2
                (fun party w ->
                  Net.Network.send_exn net ~src:party.node ~dst:ttp
                    ~label:"ranking:submit"
                    ~bytes:(Proto_util.bignum_wire_size w);
                  Proto_util.observe net ~node:ttp
                    ~sensitivity:Net.Ledger.Blinded ~tag:"ranking:submit"
                    (Bignum.to_string w);
                  (party.node, w))
                parties ws
            in
            Proto_util.round ~label:"ranking" net;
            blinded)
      in
      Proto_util.span net "smc.ranking.reveal" (fun () ->
          let verdict = verdict_of_values blinded in
          (* The TTP announces holders and ranks (identities only, no
             values). *)
          List.iter
            (fun node ->
              Net.Network.send_exn net ~src:ttp ~dst:node
                ~label:"ranking:verdict" ~bytes:(4 * List.length parties);
              Proto_util.observe net ~node ~sensitivity:Net.Ledger.Aggregate
                ~tag:"ranking:verdict"
                (Net.Node_id.to_string verdict.max_holder))
            nodes;
          Proto_util.round ~label:"ranking" net;
          verdict))

let comparisons ~net ~rng ~ttp ~left:(lnode, lval) ~right:(rnode, rval) =
  Net.Network.send_exn net ~src:lnode ~dst:rnode ~label:"compare:negotiate"
    ~bytes:16;
  Proto_util.round ~label:"compare" net;
  let blind = Crypto.Blinding.generate_monotone rng ~bits:64 in
  let wl, wr =
    match Crypto.Blinding.apply_monotone_many blind [ lval; rval ] with
    | [ wl; wr ] -> (wl, wr)
    | _ -> assert false
  in
  List.iter
    (fun (src, w) ->
      Net.Network.send_exn net ~src ~dst:ttp ~label:"compare:submit"
        ~bytes:(Proto_util.bignum_wire_size w);
      Proto_util.observe net ~node:ttp ~sensitivity:Net.Ledger.Blinded
        ~tag:"compare:submit" (Bignum.to_string w))
    [ (lnode, wl); (rnode, wr) ];
  Proto_util.round ~label:"compare" net;
  let verdict = Bignum.compare wl wr in
  List.iter
    (fun dst ->
      Net.Network.send_exn net ~src:ttp ~dst ~label:"compare:verdict" ~bytes:1)
    [ lnode; rnode ];
  Proto_util.round ~label:"compare" net;
  verdict

let naive ~net ~coordinator parties =
  List.iter
    (fun party ->
      if not (Net.Node_id.equal party.node coordinator) then
        Net.Network.send_exn net ~src:party.node ~dst:coordinator
          ~label:"ranking:naive"
          ~bytes:(Proto_util.bignum_wire_size party.value);
      Proto_util.observe net ~node:coordinator
        ~sensitivity:Net.Ledger.Plaintext ~tag:"ranking:naive"
        (Bignum.to_string party.value))
    parties;
  Proto_util.round ~label:"ranking" net;
  verdict_of_values (List.map (fun party -> (party.node, party.value)) parties)
