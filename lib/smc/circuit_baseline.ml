open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

(* A shared bit is one XOR-share per party (a [bool list] in party
   order); the share lists below all follow that convention. *)

let and_gate_messages ~n = n + (2 * n * (n - 1))

let share_bit rng n b =
  let rec go i acc parity =
    if i = n - 1 then List.rev ((b <> parity) :: acc)
    else begin
      let s = Prng.bool rng in
      go (i + 1) (s :: acc) (parity <> s)
    end
  in
  go 0 [] false

let xor_shares = List.map2 (fun a b -> a <> b)

let open_bit net nodes shares =
  (* Every party broadcasts its share to every other party. *)
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Net.Node_id.equal src dst) then
            Net.Network.send_exn net ~src ~dst ~label:"circuit:open" ~bytes:1)
        nodes)
    nodes;
  List.fold_left ( <> ) false shares

let deal_triple net rng dealer nodes =
  let n = List.length nodes in
  let a = Prng.bool rng and b = Prng.bool rng in
  let c = a && b in
  let sa = share_bit rng n a and sb = share_bit rng n b and sc = share_bit rng n c in
  List.iter
    (fun dst ->
      if not (Net.Node_id.equal dealer dst) then
        Net.Network.send_exn net ~src:dealer ~dst ~label:"circuit:triple"
          ~bytes:3)
    nodes;
  (sa, sb, sc)

(* z = x AND y via Beaver: open d = x⊕a and e = y⊕b, then
   z_i = c_i ⊕ (d ∧ b_i) ⊕ (e ∧ a_i) ⊕ (d ∧ e at party 0). *)
let and_gate net rng dealer nodes x y =
  let sa, sb, sc = deal_triple net rng dealer nodes in
  let d = open_bit net nodes (xor_shares x sa) in
  let e = open_bit net nodes (xor_shares y sb) in
  Proto_util.round net;
  List.mapi
    (fun i ((ai, bi), ci) ->
      let z = ci <> (d && bi) <> (e && ai) in
      if i = 0 then z <> (d && e) else z)
    (List.combine (List.combine sa sb) sc)

let xor_gate = xor_shares

(* Full adder on shared bits: sum = x⊕y⊕cin (free);
   cout = ((x⊕cin) ∧ (y⊕cin)) ⊕ cin (one AND). *)
let full_adder net rng dealer nodes x y cin =
  let s = xor_gate (xor_gate x y) cin in
  let t = and_gate net rng dealer nodes (xor_gate x cin) (xor_gate y cin) in
  let cout = xor_gate t cin in
  (s, cout)

let secure_sum ~net ~rng ~dealer ~receiver ~width parties =
  let n = List.length parties in
  if n < 2 then invalid_arg "Circuit_baseline.secure_sum: need >= 2 parties";
  if width < 1 then invalid_arg "Circuit_baseline.secure_sum: width < 1";
  List.iter
    (fun party ->
      if Bignum.sign party.value < 0 || Bignum.num_bits party.value > width
      then invalid_arg "Circuit_baseline.secure_sum: value exceeds width")
    parties;
  let nodes = List.map (fun party -> party.node) parties in
  (* Input phase: party i shares each bit of its value with everyone. *)
  let shared_inputs =
    List.map
      (fun party ->
        Proto_util.observe net ~node:party.node
          ~sensitivity:Net.Ledger.Plaintext ~tag:"circuit:own-value"
          (Bignum.to_string party.value);
        List.iter
          (fun dst ->
            if not (Net.Node_id.equal party.node dst) then
              Net.Network.send_exn net ~src:party.node ~dst
                ~label:"circuit:input" ~bytes:((width + 7) / 8))
          nodes;
        List.init width (fun bit ->
          share_bit rng n (Bignum.test_bit party.value bit)))
      parties
  in
  Proto_util.round net;
  let zero_bits = List.init width (fun _ -> List.init n (fun _ -> false)) in
  (* Ripple-carry accumulation of all inputs. *)
  let add_words acc word =
    let rec go acc_bits word_bits carry out =
      match (acc_bits, word_bits) with
      | [], [] -> List.rev out
      | a :: arest, w' :: wrest ->
        let s, carry = full_adder net rng dealer nodes a w' carry in
        go arest wrest carry (s :: out)
      | _ -> assert false
    in
    go acc word (List.init n (fun _ -> false)) []
  in
  let total_shared = List.fold_left add_words zero_bits shared_inputs in
  (* Output phase: open each sum bit toward the receiver. *)
  let bits = List.map (fun b -> open_bit net nodes b) total_shared in
  Proto_util.round net;
  let total =
    List.fold_left
      (fun (acc, i) b ->
        ((if b then Bignum.logor acc (Bignum.shift_left Bignum.one i) else acc), i + 1))
      (Bignum.zero, 0) bits
    |> fst
  in
  Proto_util.observe net ~node:receiver ~sensitivity:Net.Ledger.Aggregate
    ~tag:"circuit:result" (Bignum.to_string total);
  total
