open Numtheory

type reason = Corrupted | Dropped | Replayed | Forged_share

let reason_to_string = function
  | Corrupted -> "corrupted payload"
  | Dropped -> "dropped payload"
  | Replayed -> "replayed payload"
  | Forged_share -> "forged share"

type accusation = {
  accused : Net.Node_id.t;
  label : string;
  seq : int;
  reason : reason;
}

let accusation_to_string a =
  Printf.sprintf "%s on %s (pass %d): %s"
    (Net.Node_id.to_string a.accused)
    a.label a.seq (reason_to_string a.reason)

exception Byzantine_detected of accusation list

let () =
  Printexc.register_printer (function
    | Byzantine_detected accs ->
      Some
        (Printf.sprintf "Smc.Round_guard.Byzantine_detected(%s)"
           (String.concat "; " (List.map accusation_to_string accs)))
    | _ -> None)

type t = {
  mutable seq : int;
  (* claimed-commitment history per (src, label) channel, newest first *)
  history : (string, string list) Hashtbl.t;
  mutable accs : accusation list; (* newest first *)
  mutable verify_msgs : int;
  mutable verify_bytes : int;
}

let create () =
  {
    seq = 0;
    history = Hashtbl.create 16;
    accs = [];
    verify_msgs = 0;
    verify_bytes = 0;
  }

let digest values =
  values
  |> List.map Bignum.to_hex
  |> String.concat ";"
  |> Crypto.Sha256.digest_hex

let charge t ~msgs ~bytes =
  t.verify_msgs <- t.verify_msgs + msgs;
  t.verify_bytes <- t.verify_bytes + bytes;
  Obs.Metrics.incr ~by:msgs "byz.verify.msgs";
  Obs.Metrics.incr ~by:bytes "byz.verify.bytes"

let record t acc =
  t.accs <- acc :: t.accs;
  Obs.Metrics.incr "byz.accusations";
  Obs.Metrics.incr ("byz.detect." ^ reason_to_string acc.reason)

let accuse t ~accused ~label ~reason =
  t.seq <- t.seq + 1;
  record t { accused; label; seq = t.seq; reason }

(* A commitment is a 32-byte digest; sender commitment plus receiver
   echo make the exchange two verification messages per pass. *)
let commitment_bytes = 32

let observe_pass t ~src ~dst:_ ~label ~claimed ~received =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  charge t ~msgs:2 ~bytes:(2 * commitment_bytes);
  let claimed_digest = digest claimed in
  let received_digest = digest received in
  let key = Net.Node_id.to_string src ^ "|" ^ label in
  let history = Option.value ~default:[] (Hashtbl.find_opt t.history key) in
  if not (String.equal claimed_digest received_digest) then begin
    let reason =
      if received = [] && claimed <> [] then Dropped
      else if List.exists (String.equal received_digest) history then Replayed
      else Corrupted
    in
    record t { accused = src; label; seq; reason }
  end;
  Hashtbl.replace t.history key (claimed_digest :: history);
  claimed_digest

let accusations t = List.rev t.accs

let accused_nodes t =
  List.map (fun a -> a.accused) t.accs
  |> List.sort_uniq Net.Node_id.compare

let verify_cost t = (t.verify_msgs, t.verify_bytes)

let check t =
  match t.accs with [] -> () | _ -> raise (Byzantine_detected (accusations t))

let active : t option ref = ref None
let current () = !active

let with_guard t f =
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) f
