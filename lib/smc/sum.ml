open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

let check_inputs ~p ~k parties =
  let n = List.length parties in
  if n < 2 then invalid_arg "Sum: need at least 2 parties";
  if k < 1 || k > n then invalid_arg "Sum: threshold k outside [1, n]";
  List.iter
    (fun party ->
      if Bignum.sign party.value < 0 || Bignum.compare party.value p >= 0 then
        invalid_arg "Sum: value outside [0, p)")
    parties

let share_tag = "sum:share"

let run_general ~net ~rng ~p ~k ~receiver ~weight_of parties =
  check_inputs ~p ~k parties;
  Proto_util.span net "smc.sum" (fun () ->
      let n = List.length parties in
      let nodes = List.map (fun party -> party.node) parties in
      let xs = Crypto.Shamir.default_xs ~n in
      (* Round 1: P_i splits its secret and deals the j-th share to P_j. *)
      let dealt =
        Proto_util.span net "smc.sum.transform" (fun () ->
            List.map
              (fun party ->
                Proto_util.observe net ~node:party.node
                  ~sensitivity:Net.Ledger.Plaintext ~tag:"sum:own-value"
                  (Bignum.to_string party.value);
                Crypto.Shamir.split rng ~p ~k ~xs ~secret:party.value
                |> List.map
                     (Crypto.Shamir.scale_share ~p (weight_of party.node)))
              parties)
      in
      (* Shares continue through the protocol as actually received:
         [Proto_util.deliver_share] is the Byzantine tamper/verify
         point and the identity on the honest path. *)
      let delivered =
        Proto_util.span net "smc.sum.exchange" (fun () ->
            let delivered =
              List.map2
                (fun party shares ->
                  List.map2
                    (fun dst (share : Crypto.Shamir.share) ->
                      let share =
                        if Net.Node_id.equal party.node dst then share
                        else begin
                          Net.Network.send_exn net ~src:party.node ~dst
                            ~label:share_tag
                            ~bytes:(Proto_util.bignum_wire_size share.y);
                          {
                            share with
                            y =
                              Proto_util.deliver_share net ~src:party.node
                                ~dst ~label:share_tag share.y;
                          }
                        end
                      in
                      Proto_util.observe net ~node:dst
                        ~sensitivity:Net.Ledger.Share ~tag:share_tag
                        (Bignum.to_string share.y);
                      share)
                    nodes shares)
                parties dealt
            in
            Proto_util.round ~label:"sum" net;
            delivered)
      in
      Proto_util.span net "smc.sum.reveal" (fun () ->
          (* Round 2: P_j sums its column — a share of F(z) = Σ f_i(z). *)
          let columns =
            List.mapi
              (fun j node ->
                let column =
                  List.map (fun shares -> List.nth shares j) delivered
                in
                (node, Crypto.Shamir.sum_shares ~p column))
              nodes
          in
          (* Round 3: first k parties forward their aggregate share. *)
          let selected = List.filteri (fun i _ -> i < k) columns in
          let collected =
            List.map
              (fun (node, (share : Crypto.Shamir.share)) ->
                let share =
                  if Net.Node_id.equal node receiver then share
                  else begin
                    Net.Network.send_exn net ~src:node ~dst:receiver
                      ~label:"sum:aggregate"
                      ~bytes:(Proto_util.bignum_wire_size share.y);
                    {
                      share with
                      y =
                        Proto_util.deliver_share net ~src:node ~dst:receiver
                          ~label:"sum:aggregate" share.y;
                    }
                  end
                in
                Proto_util.observe net ~node:receiver
                  ~sensitivity:Net.Ledger.Share ~tag:"sum:aggregate"
                  (Bignum.to_string share.y);
                share)
              selected
          in
          Proto_util.round ~label:"sum" net;
          let total =
            match Round_guard.current () with
            | None -> Crypto.Shamir.reconstruct ~p collected
            | Some guard ->
              (* Verified mode: over-provision reconstruction with the
                 n - k remaining aggregate shares so forged shares are
                 identified by consistency voting.  The extras ride the
                 verification channel — the §3 cost model counts exactly
                 k aggregate messages, so they are charged to the guard,
                 never to the network counters. *)
              let extras =
                List.filteri (fun i _ -> i >= k) columns
                |> List.map (fun (node, (share : Crypto.Shamir.share)) ->
                       Round_guard.charge guard ~msgs:1
                         ~bytes:(Proto_util.bignum_wire_size share.y);
                       let y =
                         match Net.Adversary.current () with
                         | None -> share.y
                         | Some adv -> (
                           match
                             Net.Adversary.tamper adv ~src:node
                               ~dst:receiver ~label:"sum:aggregate-verify"
                               [ share.y ]
                           with
                           | [ y ] -> y
                           | _ -> share.y)
                       in
                       Proto_util.observe net ~node:receiver
                         ~sensitivity:Net.Ledger.Share
                         ~tag:"sum:aggregate-verify" (Bignum.to_string y);
                       { share with y })
              in
              let robust =
                Crypto.Shamir.reconstruct_robust ~p ~k (collected @ extras)
              in
              let node_of_x x =
                List.find_opt
                  (fun (x', _) -> Bignum.equal x' x)
                  (List.combine xs nodes)
              in
              List.iter
                (fun (s : Crypto.Shamir.share) ->
                  match node_of_x s.x with
                  | Some (_, node) ->
                    Round_guard.accuse guard ~accused:node
                      ~label:"sum:aggregate" ~reason:Round_guard.Forged_share
                  | None -> ())
                robust.forged;
              robust.secret
          in
          Proto_util.observe net ~node:receiver
            ~sensitivity:Net.Ledger.Aggregate ~tag:"sum:result"
            (Bignum.to_string total);
          total))

let run ~net ~rng ~p ~k ~receiver parties =
  run_general ~net ~rng ~p ~k ~receiver ~weight_of:(fun _ -> Bignum.one) parties

let run_weighted ~net ~rng ~p ~k ~receiver ~weights parties =
  let weight_of node =
    match List.find_opt (fun (n, _) -> Net.Node_id.equal n node) weights with
    | Some (_, w) -> Modular.normalize w ~m:p
    | None -> Bignum.one
  in
  run_general ~net ~rng ~p ~k ~receiver ~weight_of parties

let run_ttp_coordinated ~net ~rng ~public ~secret ~coordinator ~receiver
    parties =
  if List.length parties < 2 then invalid_arg "Sum: need at least 2 parties";
  (* Round 1: each party sends one ciphertext to the coordinator. *)
  let ciphertexts =
    List.map
      (fun party ->
        Proto_util.observe net ~node:party.node
          ~sensitivity:Net.Ledger.Plaintext ~tag:"sum:own-value"
          (Bignum.to_string party.value);
        let c = Crypto.Paillier.encrypt rng public party.value in
        Net.Network.send_exn net ~src:party.node ~dst:coordinator
          ~label:"sum:paillier-ct"
          ~bytes:(Proto_util.bignum_wire_size c);
        Proto_util.observe net ~node:coordinator
          ~sensitivity:Net.Ledger.Ciphertext ~tag:"sum:paillier-ct"
          (Bignum.to_hex c);
        c)
      parties
  in
  Proto_util.round ~label:"sum" net;
  (* The blind coordinator folds homomorphically — one multiplication per
     party, no key material. *)
  let folded =
    match ciphertexts with
    | [] -> assert false
    | first :: rest -> List.fold_left (Crypto.Paillier.add public) first rest
  in
  Net.Network.send_exn net ~src:coordinator ~dst:receiver
    ~label:"sum:paillier-total" ~bytes:(Proto_util.bignum_wire_size folded);
  Proto_util.round ~label:"sum" net;
  let total = Crypto.Paillier.decrypt public secret folded in
  Proto_util.observe net ~node:receiver ~sensitivity:Net.Ledger.Aggregate
    ~tag:"sum:result" (Bignum.to_string total);
  total

let naive ~net ~coordinator parties =
  let total =
    List.fold_left
      (fun acc party ->
        if not (Net.Node_id.equal party.node coordinator) then
          Net.Network.send_exn net ~src:party.node ~dst:coordinator
            ~label:"sum:naive"
            ~bytes:(Proto_util.bignum_wire_size party.value);
        Proto_util.observe net ~node:coordinator
          ~sensitivity:Net.Ledger.Plaintext ~tag:"sum:naive"
          (Bignum.to_string party.value);
        Bignum.add acc party.value)
      Bignum.zero parties
  in
  Proto_util.round ~label:"sum" net;
  total
