open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

type outcome = Total of Bignum.t | Timed_out of Net.Node_id.t list

type msg =
  | Deal of { dealer : Net.Node_id.t; share : Crypto.Shamir.share }
  | Aggregate of Crypto.Shamir.share

let run ?(seed = 0) ?(latency_ms = 1.0) ?(timeout_ms = 100.0) ?(down = [])
    ~rng ~p ~k ~receiver parties =
  let n = List.length parties in
  if n < 2 then invalid_arg "Async_sum.run: need at least 2 parties";
  if k < 1 || k > n then invalid_arg "Async_sum.run: threshold k outside [1, n]";
  let nodes = List.map (fun party -> party.node) parties in
  let xs = Crypto.Shamir.default_xs ~n in
  let sim = Net.Sim.of_config (Net.Config.make ~seed ~latency_ms:(fun _ _ -> latency_ms) ()) in
  List.iter (Net.Sim.take_down sim) down;
  let outcome = ref (Timed_out []) in
  let finished = ref false in
  let finish_time = ref 0.0 in
  (* Per-node protocol state, captured by the handlers. *)
  let received : (string, (Net.Node_id.t * Crypto.Shamir.share) list) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let seen_dealers : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let collected = ref [] in
  let node_handler node ~src:_ msg =
    match msg with
    | Deal { dealer; share } ->
      let key = Net.Node_id.to_string node in
      Hashtbl.replace seen_dealers (Net.Node_id.to_string dealer) ();
      let shares =
        (dealer, share) :: Option.value ~default:[] (Hashtbl.find_opt received key)
      in
      Hashtbl.replace received key shares;
      if List.length shares = n then begin
        (* Full column: forward the aggregate share to the receiver. *)
        let aggregate =
          Crypto.Shamir.sum_shares ~p (List.map snd shares)
        in
        Net.Sim.send sim ~src:node ~dst:receiver (Aggregate aggregate)
      end
    | Aggregate _ -> ()
  in
  let receiver_handler ~src:_ msg =
    match msg with
    | Aggregate share ->
      if not !finished then begin
        collected := share :: !collected;
        if List.length !collected = k then begin
          finished := true;
          finish_time := Net.Sim.now sim;
          outcome := Total (Crypto.Shamir.reconstruct ~p !collected)
        end
      end
    | Deal _ -> ()
  in
  List.iter (fun node -> Net.Sim.on_message sim node (node_handler node)) nodes;
  Net.Sim.on_message sim receiver receiver_handler;
  (* Kickoff: every live dealer splits its value and deals. *)
  List.iter
    (fun party ->
      if not (List.exists (Net.Node_id.equal party.node) down) then begin
        let shares = Crypto.Shamir.split rng ~p ~k ~xs ~secret:party.value in
        List.iter2
          (fun dst share ->
            Net.Sim.send sim ~src:party.node ~dst
              (Deal { dealer = party.node; share }))
          nodes shares
      end)
    parties;
  Net.Sim.set_timer sim ~delay_ms:timeout_ms (fun () ->
      if not !finished then begin
        finished := true;
        finish_time := Net.Sim.now sim;
        let missing =
          List.filter
            (fun node ->
              not (Hashtbl.mem seen_dealers (Net.Node_id.to_string node)))
            nodes
        in
        outcome := Timed_out missing
      end);
  ignore (Net.Sim.run sim);
  (!outcome, !finish_time)
