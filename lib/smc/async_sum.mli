(** Asynchronous secure sum (§3.5) on the discrete-event simulator.

    The same Shamir protocol as {!Sum.run}, written as message handlers
    on {!Net.Sim}: dealing, column aggregation and collection all happen
    as deliveries arrive, with no global synchronization.  The receiver
    reconstructs as soon as [k] aggregate shares are in, and a timeout
    converts missing dealers into an explicit failure naming them —
    validating the synchronous abstraction and adding the
    failure-attribution the synchronous model cannot express. *)

open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

type outcome =
  | Total of Bignum.t
  | Timed_out of Net.Node_id.t list
      (** dealers whose shares never arrived anywhere *)

val run :
  ?seed:int ->
  ?latency_ms:float ->
  ?timeout_ms:float ->
  ?down:Net.Node_id.t list ->
  rng:Prng.t ->
  p:Bignum.t ->
  k:int ->
  receiver:Net.Node_id.t ->
  party list ->
  outcome * float
(** Returns the outcome and the virtual completion time (ms).
    @raise Invalid_argument like {!Sum.run}. *)
