open Numtheory

let record_blinded net node value =
  Proto_util.observe net ~node ~sensitivity:Net.Ledger.Blinded
    ~tag:"equality:blinded" (Bignum.to_string value)

let via_ttp ~net ~rng ~p ~ttp ~left:(lnode, lval) ~right:(rnode, rval) =
  let check v =
    if Bignum.sign v < 0 || Bignum.compare v p >= 0 then
      invalid_arg "Equality.via_ttp: value outside [0, p)"
  in
  check lval;
  check rval;
  Proto_util.span net "smc.equality" (fun () ->
      let wl, wr =
        Proto_util.span net "smc.equality.transform" (fun () ->
            (* The two holders agree on the secret map; one negotiation
               message. *)
            let blind = Crypto.Blinding.generate_affine rng ~p in
            Net.Network.send_exn net ~src:lnode ~dst:rnode
              ~label:"equality:negotiate"
              ~bytes:(2 * Proto_util.bignum_wire_size p);
            Proto_util.round ~label:"equality" net;
            (* Both values blind under the one agreed map in a single
               batch pass. *)
            match Crypto.Blinding.apply_affine_many blind [ lval; rval ] with
            | [ wl; wr ] -> (wl, wr)
            | _ -> assert false)
      in
      Proto_util.span net "smc.equality.blind-ttp" (fun () ->
          Net.Network.send_exn net ~src:lnode ~dst:ttp ~label:"equality:submit"
            ~bytes:(Proto_util.bignum_wire_size wl);
          Net.Network.send_exn net ~src:rnode ~dst:ttp ~label:"equality:submit"
            ~bytes:(Proto_util.bignum_wire_size wr);
          record_blinded net ttp wl;
          record_blinded net ttp wr;
          Proto_util.round ~label:"equality" net;
          let verdict = Bignum.equal wl wr in
          (* TTP returns the one-bit verdict to both holders. *)
          Net.Network.send_exn net ~src:ttp ~dst:lnode ~label:"equality:verdict"
            ~bytes:1;
          Net.Network.send_exn net ~src:ttp ~dst:rnode ~label:"equality:verdict"
            ~bytes:1;
          Proto_util.round ~label:"equality" net;
          verdict))

let via_intersection ~net ~scheme ~left:(lnode, lval) ~right:(rnode, rval) =
  let result =
    Set_intersection.run ~net ~scheme ~receiver:lnode
      [ { Set_intersection.node = lnode; set = [ lval ] };
        { Set_intersection.node = rnode; set = [ rval ] }
      ]
  in
  result.Set_intersection.intersection <> []

let via_mapping_table ~net ~rng ~ttp ~domain ~left:(lnode, lval)
    ~right:(rnode, rval) =
  (* The agreed random mapping table: a secret shuffle of the domain,
     assigning each value a fresh index in the number space. *)
  let table =
    List.mapi
      (fun index value -> (value, index))
      (Proto_util.shuffle rng domain)
  in
  let map_value v =
    match List.assoc_opt v table with
    | Some index -> Bignum.of_int index
    | None -> invalid_arg "Equality.via_mapping_table: value outside domain"
  in
  let yl = map_value lval and yr = map_value rval in
  (* Table agreement costs one message carrying the shuffled domain. *)
  let table_bytes =
    List.fold_left (fun acc v -> acc + String.length v + 4) 0 domain
  in
  Net.Network.send_exn net ~src:lnode ~dst:rnode ~label:"equality:table"
    ~bytes:table_bytes;
  Proto_util.round ~label:"equality" net;
  (* From here it is the affine-blind TTP comparison on the mapped
     numbers; the TTP sees indices of a secret permutation. *)
  let p = Bignum.of_int (max 2 (2 * List.length domain)) in
  let p = if Bignum.is_even p then Bignum.succ p else p in
  let blind = Crypto.Blinding.generate_affine rng ~p in
  let wl, wr =
    match Crypto.Blinding.apply_affine_many blind [ yl; yr ] with
    | [ wl; wr ] -> (wl, wr)
    | _ -> assert false
  in
  List.iter
    (fun (src, w) ->
      Net.Network.send_exn net ~src ~dst:ttp ~label:"equality:submit"
        ~bytes:(Proto_util.bignum_wire_size w);
      record_blinded net ttp w)
    [ (lnode, wl); (rnode, wr) ];
  Proto_util.round ~label:"equality" net;
  let verdict = Bignum.equal wl wr in
  Net.Network.send_exn net ~src:ttp ~dst:lnode ~label:"equality:verdict"
    ~bytes:1;
  Net.Network.send_exn net ~src:ttp ~dst:rnode ~label:"equality:verdict"
    ~bytes:1;
  Proto_util.round ~label:"equality" net;
  verdict

let naive ~net ~coordinator ~left:(lnode, lval) ~right:(rnode, rval) =
  List.iter
    (fun (node, v) ->
      if not (Net.Node_id.equal node coordinator) then
        Net.Network.send_exn net ~src:node ~dst:coordinator
          ~label:"equality:naive" ~bytes:(Proto_util.bignum_wire_size v);
      Proto_util.observe net ~node:coordinator
        ~sensitivity:Net.Ledger.Plaintext ~tag:"equality:naive"
        (Bignum.to_string v))
    [ (lnode, lval); (rnode, rval) ];
  Proto_util.round ~label:"equality" net;
  Bignum.equal lval rval
