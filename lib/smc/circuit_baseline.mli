(** Classical circuit-style secure sum — the cost comparator.

    §3 of the paper argues that classical multiparty private computation
    ([9]–[18]: boolean-circuit evaluation over bitwise shares) is "too
    costly to be useful for practical systems", which motivates the
    relaxed model.  To reproduce that claim quantitatively we implement a
    representative circuit protocol: GMW-style XOR bit-sharing among n
    parties with dealer-assisted Beaver triples for AND gates, evaluating
    a ripple-carry adder tree for the sum.

    Per AND gate: one triple dealt (n messages) plus two masked-bit
    openings (2·n·(n-1) messages).  Summing n values of w bits costs
    (n-1)·w AND gates — the quadratic-in-n, linear-in-width blowup the
    paper contrasts against the O(n²) *total* messages of the Shamir
    secure sum.  The benches print both side by side (experiment P1). *)

open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

val secure_sum :
  net:Net.Network.t ->
  rng:Prng.t ->
  dealer:Net.Node_id.t ->
  receiver:Net.Node_id.t ->
  width:int ->
  party list ->
  Bignum.t
(** Sum modulo 2^[width].  Each input must fit in [width] bits.
    @raise Invalid_argument on out-of-range inputs or fewer than
    2 parties. *)

val and_gate_messages : n:int -> int
(** Messages one AND gate costs with [n] parties (triple + openings);
    exposed for the analytic columns of the cost bench. *)
