(** Secure equality checking =ₛ (paper §3.2).

    Randomized-mapping variant: the two holders agree on a secret random
    affine bijection [y ↦ (a·y + b) mod p] and submit only transformed
    values to a blind TTP, which compares them and returns the verdict.
    The TTP learns one bit (plus the agreed modulus) and never sees the
    originals. *)

open Numtheory

val via_ttp :
  net:Net.Network.t ->
  rng:Prng.t ->
  p:Bignum.t ->
  ttp:Net.Node_id.t ->
  left:Net.Node_id.t * Bignum.t ->
  right:Net.Node_id.t * Bignum.t ->
  bool
(** Values must lie in [\[0, p)]. @raise Invalid_argument otherwise. *)

val via_intersection :
  net:Net.Network.t ->
  scheme:Crypto.Commutative.scheme ->
  left:Net.Node_id.t * string ->
  right:Net.Node_id.t * string ->
  bool
(** The paper's alternative: secure set intersection on singleton sets
    ("when the set size of S_i = 1 ... could be used for secure equality
    comparison"). *)

val via_mapping_table :
  net:Net.Network.t ->
  rng:Prng.t ->
  ttp:Net.Node_id.t ->
  domain:string list ->
  left:Net.Node_id.t * string ->
  right:Net.Node_id.t * string ->
  bool
(** §3.2 verbatim: "two nodes securely agree upon a random mapping
    table, which transforms (X_R, X_M) to a number space (Y_R, Y_M)",
    then affine-blind the mapped numbers and let the TTP compare.  The
    shared [domain] enumerates the values' finite universe (both values
    must belong to it).
    @raise Invalid_argument if a value is outside the domain. *)

val naive :
  net:Net.Network.t ->
  coordinator:Net.Node_id.t ->
  left:Net.Node_id.t * Bignum.t ->
  right:Net.Node_id.t * Bignum.t ->
  bool
