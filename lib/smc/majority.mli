(** Distributed majority agreement (paper §2: "DLA nodes use secure
    multiparty computations, threshold signature and {e distributed
    majority agreement} to provide trusted and reliable auditing").

    Commit-then-reveal voting among the DLA nodes:

    + every node broadcasts a hash commitment to its vote;
    + after all commitments are in, every node broadcasts its opening;
    + openings that fail against the committed value are discarded and
      their senders flagged — a node cannot change its vote after seeing
      the others' commitments, and any attempt is publicly attributable.

    This is the cluster's decision primitive: an audit verdict stands
    only when a majority of mutually-monitoring nodes back it. *)

type vote = Approve | Reject

val vote_to_string : vote -> string

type outcome = {
  verdict : vote option;  (** [None] on a tie among valid votes *)
  approvals : int;
  rejections : int;
  flagged : Net.Node_id.t list;  (** nodes whose opening failed *)
}

val run :
  net:Net.Network.t ->
  rng:Numtheory.Prng.t ->
  votes:(Net.Node_id.t * vote) list ->
  ?cheaters:(Net.Node_id.t * vote) list ->
  unit ->
  outcome
(** Run one agreement round.  [cheaters] lists nodes that attempt to
    open a *different* vote than they committed (the listed vote is the
    one they try to switch to); the protocol flags and excludes them.
    @raise Invalid_argument with fewer than 2 voters or duplicate
    voters. *)
