(** Per-round verification guard for the SMC passes (Byzantine layer).

    The defense is a SHA-256 round-commitment exchange: before a ring
    pass is consumed, sender and receiver cross-check digests of the
    payload as claimed by the sender's honest protocol state and as
    actually received on the wire.  A mismatch is classified and
    recorded as a typed {!accusation} naming the lying node:

    - {e dropped} — the wire carried nothing while the sender claimed a
      non-empty payload;
    - {e replayed} — the wire digest matches an earlier commitment on
      the same (sender, label) channel;
    - {e corrupted} — any other divergence (covers ciphertext
      corruption, equivocation and reordering — the receiver-specific
      digest exchange is exactly what makes equivocation visible);
    - {e forged share} — recorded by [Smc.Sum]'s over-provisioned
      Shamir consistency vote rather than by digest comparison.

    Cost accounting: commitment traffic never touches
    [Net.Network.send] — the §3 cost-model counters ([net.msgs],
    [net.rounds.*]) are part of the paper's contract and must not move.
    Verification overhead is charged to the separate [byz.verify.msgs]
    / [byz.verify.bytes] metrics instead.

    Installation mirrors [Proto_util.transcript_hook]: a guard made
    current via {!with_guard} is consulted by [Proto_util] on every
    payload delivery; with no guard installed nothing is computed and
    the honest path is byte-identical. *)

open Numtheory

type reason = Corrupted | Dropped | Replayed | Forged_share

val reason_to_string : reason -> string

type accusation = {
  accused : Net.Node_id.t;
  label : string;  (** message label of the offending pass *)
  seq : int;  (** guard-wide pass sequence number *)
  reason : reason;
}

val accusation_to_string : accusation -> string

exception Byzantine_detected of accusation list

type t

val create : unit -> t

val digest : Bignum.t list -> string
(** Canonical 64-hex SHA-256 commitment over a payload. *)

val observe_pass :
  t ->
  src:Net.Node_id.t ->
  dst:Net.Node_id.t ->
  label:string ->
  claimed:Bignum.t list ->
  received:Bignum.t list ->
  string
(** Cross-check one pass; records an accusation against [src] on
    divergence and returns the claimed digest (what the receiver's
    ledger carries).  Charges the commitment exchange to the
    [byz.verify.*] metrics. *)

val accuse :
  t -> accused:Net.Node_id.t -> label:string -> reason:reason -> unit
(** Record an accusation from an out-of-band check (Shamir voting). *)

val charge : t -> msgs:int -> bytes:int -> unit
(** Account extra verification traffic (e.g. over-provisioned shares). *)

val accusations : t -> accusation list
(** Chronological. *)

val accused_nodes : t -> Net.Node_id.t list
(** Distinct accused nodes, sorted. *)

val verify_cost : t -> int * int
(** [(msgs, bytes)] of verification traffic charged to this guard. *)

val check : t -> unit
(** @raise Byzantine_detected if any accusation was recorded. *)

val current : unit -> t option

val with_guard : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback (restored on exit). *)
