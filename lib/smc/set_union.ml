open Numtheory

type party = { node : Net.Node_id.t; set : string list }

module String_set = Set.Make (String)
module String_map = Map.Make (String)

let dedupe items = String_set.elements (String_set.of_list items)

(* Ring pass shared by the full and size-only variants: returns the
   distinct fully-encrypted elements at the receiver plus the keypair
   lookup (needed by the decode ring). *)
let ring_collect ~net ~scheme ~receiver parties =
  let ring = List.map (fun p -> p.node) parties in
  let keypairs =
    List.map (fun p -> (p.node, scheme.Crypto.Commutative.fresh_keypair ())) parties
  in
  let keypair_of node =
    snd (List.find (fun (n, _) -> Net.Node_id.equal n node) keypairs)
  in
  (* Ring-encrypt every local set under every key, as in intersection. *)
  let initial =
    Proto_util.span net "smc.union.transform" (fun () ->
        List.map
          (fun p ->
            let set = dedupe p.set in
            List.iter
              (fun e ->
                Proto_util.observe net ~node:p.node
                  ~sensitivity:Net.Ledger.Plaintext ~tag:"union:own-set" e)
              set;
            let kp = keypair_of p.node in
            (* Remember plaintext alongside, so the receiver can later verify
               nothing: the mapping never leaves the origin.  Ciphertexts
               enter the residue domain once here and stay resident for
               the whole encryption ring (wire bytes are the canonical
               views, unchanged). *)
            ( p.node,
              kp.Crypto.Commutative.enc_res_many
                (scheme.Crypto.Commutative.enter_many
                   (List.map scheme.Crypto.Commutative.encode set)) ))
          parties)
  in
  let n = List.length parties in
  let rec hops state hop =
    if hop >= n then state
    else begin
      let state =
        List.map
          (fun (holder, cts) ->
            let next = Proto_util.ring_next ring holder in
            let cts =
              Proto_util.send_residents net ~scheme ~src:holder ~dst:next
                ~label:"union:relay" cts
            in
            let kp = keypair_of next in
            (next, kp.Crypto.Commutative.enc_res_many cts))
          state
      in
      Proto_util.round ~label:"union" net;
      hops state (hop + 1)
    end
  in
  let final =
    Proto_util.span net "smc.union.exchange" (fun () -> hops initial 1)
  in
  (* Collect at the receiver; keep one copy of each distinct ciphertext.
     The dedup keys on canonical hex, so residents exit the domain
     here. *)
  let all_cts =
    Proto_util.span net "smc.union.collect" (fun () ->
        let cts =
          List.concat_map
            (fun (holder, cts) ->
              let views = List.map scheme.Crypto.Commutative.view cts in
              if Net.Node_id.equal holder receiver then views
              else
                Proto_util.send_bignums net ~src:holder ~dst:receiver
                  ~label:"union:collect" views)
            final
        in
        Proto_util.round ~label:"union" net;
        cts)
  in
  let distinct =
    List.fold_left
      (fun acc ct -> String_map.add (Bignum.to_hex ct) ct acc)
      String_map.empty all_cts
    |> String_map.bindings |> List.map snd
  in
  (distinct, keypair_of, ring)

let run ~net ~scheme ~rng ~receiver parties =
  if List.length parties < 2 then
    invalid_arg "Set_union.run: need at least 2 parties";
  Proto_util.span net "smc.union" (fun () ->
      let distinct, keypair_of, ring =
        ring_collect ~net ~scheme ~receiver parties
      in
      Proto_util.span net "smc.union.reveal" (fun () ->
          (* Shuffle before the decode ring so positions stop identifying
             owners. *)
          let shuffled = Proto_util.shuffle rng distinct in
          (* Decode ring: every party peels its layer off the whole
             batch.  The batch enters the residue domain once at the
             start and stays resident across all peel hops; the wire
             still carries canonical views. *)
          let decoded =
            List.fold_left
              (fun (holder, cts) next ->
                let cts =
                  if Net.Node_id.equal holder next then cts
                  else begin
                    let cts =
                      Proto_util.send_residents net ~scheme ~src:holder
                        ~dst:next ~label:"union:decode" cts
                    in
                    Proto_util.round ~label:"union" net;
                    cts
                  end
                in
                let kp = keypair_of next in
                (next, kp.Crypto.Commutative.dec_res_many cts))
              (receiver, scheme.Crypto.Commutative.enter_many shuffled)
              ring
          in
          let holder, decoded_res = decoded in
          let group_elements =
            List.map scheme.Crypto.Commutative.view decoded_res
          in
          let group_elements =
            if Net.Node_id.equal holder receiver then group_elements
            else begin
              let delivered =
                Proto_util.send_bignums net ~src:holder ~dst:receiver
                  ~label:"union:decode-return" group_elements
              in
              Proto_util.round ~label:"union" net;
              delivered
            end
          in
          (* In the paper the set items are embedded reversibly, so peeling
             all layers yields the plaintext directly.  Our embedding is a
             hash, so we resolve decoded group elements through a dictionary
             of candidate encodings instead — the information flow is
             identical: the receiver obtains exactly the union plaintexts
             (its authorized output) and the shuffle above already unlinked
             elements from owners. *)
          let encode_table =
            List.fold_left
              (fun acc p ->
                List.fold_left
                  (fun acc e ->
                    String_map.add
                      (Bignum.to_hex (scheme.Crypto.Commutative.encode e))
                      e acc)
                  acc (dedupe p.set))
              String_map.empty parties
          in
          let union =
            List.filter_map
              (fun g -> String_map.find_opt (Bignum.to_hex g) encode_table)
              group_elements
            |> List.sort compare
          in
          List.iter
            (fun e ->
              Proto_util.observe net ~node:receiver
                ~sensitivity:Net.Ledger.Aggregate ~tag:"union:result" e)
            union;
          union))

let cardinality ~net ~scheme ~receiver parties =
  if List.length parties < 2 then
    invalid_arg "Set_union.cardinality: need at least 2 parties";
  Proto_util.span net "smc.union" (fun () ->
      let distinct, _, _ = ring_collect ~net ~scheme ~receiver parties in
      let count = List.length distinct in
      Proto_util.observe net ~node:receiver ~sensitivity:Net.Ledger.Aggregate
        ~tag:"union:cardinality" (string_of_int count);
      count)

let naive ~net ~coordinator parties =
  let union =
    List.fold_left
      (fun acc p ->
        let set = dedupe p.set in
        if not (Net.Node_id.equal p.node coordinator) then begin
          let bytes = List.fold_left (fun a e -> a + String.length e) 0 set in
          Net.Network.send_exn net ~src:p.node ~dst:coordinator
            ~label:"union:naive" ~bytes
        end;
        List.iter
          (fun e ->
            Proto_util.observe net ~node:coordinator
              ~sensitivity:Net.Ledger.Plaintext ~tag:"union:naive" e)
          set;
        String_set.union acc (String_set.of_list set))
      String_set.empty parties
  in
  Proto_util.round net;
  String_set.elements union
