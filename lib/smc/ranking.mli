(** Secure distributed sorting: Maxₛ, Minₛ, Rankₛ (paper §3.3).

    All n parties agree on a secret strictly increasing transform
    [y ↦ scale·y + offset] and submit transformed values to a blind TTP.
    Order is preserved, so the TTP can announce who holds the maximum /
    minimum and each party's rank without learning any original value —
    it sees only the blinded images (Definition 1's permitted
    "secondary form" disclosure). *)

open Numtheory

type party = { node : Net.Node_id.t; value : Bignum.t }

type verdict = {
  max_holder : Net.Node_id.t;
  min_holder : Net.Node_id.t;
  ranks : (Net.Node_id.t * int) list;
      (** Rank 1 = smallest; ties share the lower rank. *)
}

val run :
  net:Net.Network.t ->
  rng:Prng.t ->
  ttp:Net.Node_id.t ->
  party list ->
  verdict
(** @raise Invalid_argument with fewer than 2 parties. *)

val comparisons :
  net:Net.Network.t ->
  rng:Prng.t ->
  ttp:Net.Node_id.t ->
  left:Net.Node_id.t * Bignum.t ->
  right:Net.Node_id.t * Bignum.t ->
  int
(** Blind three-way comparison of two private values: -1, 0 or 1.  Used
    by the query planner for cross-node [<] and [>] predicates. *)

val naive : net:Net.Network.t -> coordinator:Net.Node_id.t -> party list -> verdict
