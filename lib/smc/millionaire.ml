open Numtheory

let run ~net ~rng ?(bits = 192) ~domain ~alice:(alice_node, i)
    ~bob:(bob_node, j) () =
  if domain < 2 then invalid_arg "Millionaire.run: domain too small";
  if i < 1 || i > domain || j < 1 || j > domain then
    invalid_arg "Millionaire.run: wealth outside [1, domain]";
  Proto_util.observe net ~node:alice_node ~sensitivity:Net.Ledger.Plaintext
    ~tag:"millionaire:own-wealth" (string_of_int i);
  Proto_util.observe net ~node:bob_node ~sensitivity:Net.Ledger.Plaintext
    ~tag:"millionaire:own-wealth" (string_of_int j);
  (* Alice's trapdoor permutation; the public key is already with Bob. *)
  let secret = Crypto.Rsa.generate rng ~bits () in
  let public = Crypto.Rsa.public secret in
  let n = public.Crypto.Rsa.n in
  (* 1. Bob encrypts a random x and blinds his wealth into it. *)
  let x = Prng.bignum_below rng n in
  let k = Crypto.Rsa.encrypt_raw public x in
  let m = Modular.sub k (Bignum.of_int j) ~m:n in
  Net.Network.send_exn net ~src:bob_node ~dst:alice_node
    ~label:"millionaire:blinded" ~bytes:(Proto_util.bignum_wire_size m);
  Proto_util.observe net ~node:alice_node ~sensitivity:Net.Ledger.Ciphertext
    ~tag:"millionaire:blinded" (Bignum.to_hex m);
  Proto_util.round net;
  (* 2. Alice decrypts all domain candidates; y_j recovers Bob's x. *)
  let ys =
    Array.init domain (fun u ->
        Crypto.Rsa.decrypt_raw secret
          (Modular.add m (Bignum.of_int (u + 1)) ~m:n))
  in
  (* 3. Reduce by a random prime until the residues are pairwise at
     least 2 apart (so the +1 marking below cannot collide). *)
  let acceptable zs =
    let l = Array.to_list zs in
    let rec ok = function
      | [] -> true
      | z :: rest ->
        List.for_all
          (fun z' ->
            (not (Bignum.equal z z'))
            && (not (Bignum.equal (Bignum.succ z) z'))
            && not (Bignum.equal z (Bignum.succ z')))
          rest
        && ok rest
    in
    ok l
  in
  let rec pick_prime () =
    let p = Primes.random_prime rng ~bits:64 in
    let zs = Array.map (fun y -> Bignum.erem y p) ys in
    if acceptable zs then (p, zs) else pick_prime ()
  in
  let p, zs = pick_prime () in
  (* 4. Mark every position above Alice's wealth with +1 and return. *)
  let ws =
    Array.mapi
      (fun idx z ->
        let u = idx + 1 in
        if u <= i then z else Modular.add z Bignum.one ~m:p)
      zs
  in
  Net.Network.send_exn net ~src:alice_node ~dst:bob_node
    ~label:"millionaire:residues"
    ~bytes:
      (Array.fold_left
         (fun acc w -> acc + Proto_util.bignum_wire_size w)
         (Proto_util.bignum_wire_size p)
         ws);
  Array.iter
    (fun w ->
      Proto_util.observe net ~node:bob_node ~sensitivity:Net.Ledger.Blinded
        ~tag:"millionaire:residues" (Bignum.to_string w))
    ws;
  Proto_util.round net;
  (* 5. Bob tests his own position: unmarked iff j <= i. *)
  let verdict = Bignum.equal ws.(j - 1) (Bignum.erem x p) in
  Net.Network.send_exn net ~src:bob_node ~dst:alice_node
    ~label:"millionaire:verdict" ~bytes:1;
  Proto_util.round net;
  verdict
