(** 1-out-of-2 oblivious transfer (the primitive behind the paper's ref
    [11], the OT-based bitwise AND/NOT protocol).

    The sender holds two messages; the receiver obtains exactly the one
    it chose, the sender never learns which, and the other message stays
    hidden.  Textbook RSA construction (Even–Goldreich–Lempel, honest-
    but-curious):

    + sender publishes an RSA key and two random group elements x₀, x₁;
    + receiver blinds its choice: v = x_b + k^e for random k;
    + sender derives k₀ = (v − x₀)^d and k₁ = (v − x₁)^d — one equals k,
      the other is noise it cannot distinguish — and returns
      m₀ + k₀, m₁ + k₁;
    + receiver subtracts k from slot b.

    Messages are group elements in [\[0, n)]; use {!transfer_strings}
    for byte payloads. *)

open Numtheory

val transfer :
  net:Net.Network.t ->
  rng:Prng.t ->
  ?bits:int ->
  sender:Net.Node_id.t * Bignum.t * Bignum.t ->
  receiver:Net.Node_id.t ->
  choice:bool ->
  unit ->
  Bignum.t
(** [transfer ~sender:(s, m0, m1) ~receiver ~choice ()] delivers [m1] if
    [choice] else [m0].  [bits] sizes the RSA modulus (default 192); the
    messages must fit below it.  @raise Invalid_argument otherwise. *)

val transfer_strings :
  net:Net.Network.t ->
  rng:Prng.t ->
  ?bits:int ->
  sender:Net.Node_id.t * string * string ->
  receiver:Net.Node_id.t ->
  choice:bool ->
  unit ->
  string
(** Byte-string payloads (must be shorter than the modulus). *)

val and_gate :
  net:Net.Network.t ->
  rng:Prng.t ->
  ?bits:int ->
  left:Net.Node_id.t * bool ->
  right:Net.Node_id.t * bool ->
  unit ->
  bool
(** The ref [11] application: two parties compute the AND of their
    private bits with one OT — the sender offers [(a ∧ false, a ∧ true)]
    and the receiver selects with its own bit.  The receiver learns the
    conjunction (which, per the truth table, is all an AND can avoid
    leaking); the sender learns nothing. *)
