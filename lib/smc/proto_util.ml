open Numtheory

let bignum_wire_size v = String.length (Bignum.to_bytes_be (Bignum.abs v))

let ring_next ring node =
  let rec go = function
    | [] -> invalid_arg "Proto_util.ring_next: node not in ring"
    | [ last ] ->
      if Net.Node_id.equal last node then List.hd ring
      else invalid_arg "Proto_util.ring_next: node not in ring"
    | x :: (y :: _ as rest) ->
      if Net.Node_id.equal x node then y else go rest
  in
  if ring = [] then invalid_arg "Proto_util.ring_next: empty ring" else go ring

let shuffle rng items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* One protocol phase as an Obs span, clocked on [net]'s virtual time.
   Every protocol entry point re-binds the global trace clock, which is
   sound because the simulated protocols run synchronously to
   completion on one network at a time. *)
let span net name f =
  Obs.Trace.set_clock (fun () -> Net.Network.virtual_time_ms net);
  Obs.Trace.with_span name f

(* Round submission: every protocol's synchronization points go through
   here rather than calling [Network.round] directly.  The reactor farms
   modexp batches to an ambient domain pool; fencing the pool before
   virtual time advances guarantees no compute outlives the round that
   scheduled it, so a round barrier means the same thing under a
   width-4 pool as it does inline. *)
let round ?label net =
  Numtheory.Domain_pool.(fence (current ()));
  Net.Network.round ?label net

type wire_event = {
  node : Net.Node_id.t;
  sensitivity : Net.Ledger.sensitivity;
  tag : string;
  value : string;
  phase : string list;
}

let transcript_hook : (wire_event -> unit) option ref = ref None

let with_transcript_hook hook f =
  let previous = !transcript_hook in
  transcript_hook := Some hook;
  Fun.protect ~finally:(fun () -> transcript_hook := previous) f

let observe net ~node ~sensitivity ~tag value =
  Net.Ledger.record (Net.Network.ledger net) ~node ~sensitivity ~tag value;
  match !transcript_hook with
  | None -> ()
  | Some hook ->
    hook { node; sensitivity; tag; value; phase = Obs.Trace.current_path () }

(* Byzantine layer: the payload [dst] actually receives, after any
   installed adversary has tampered with it, cross-checked by any
   installed round guard.  Both hooks default to absent, in which case
   this is the identity and costs nothing — the honest path stays
   byte-identical.  The guard's commitment exchange is charged to the
   byz.verify.* metrics, never to the network counters (the §3
   cost-model totals are part of the paper's contract). *)
let deliver net ~src ~dst ~label values =
  let wire =
    match Net.Adversary.current () with
    | None -> values
    | Some adv -> Net.Adversary.tamper adv ~src ~dst ~label values
  in
  (match Round_guard.current () with
  | None -> ()
  | Some guard ->
    let commitment =
      Round_guard.observe_pass guard ~src ~dst ~label ~claimed:values
        ~received:wire
    in
    observe net ~node:dst ~sensitivity:Net.Ledger.Metadata
      ~tag:("byz:commit:" ^ label) commitment);
  wire

let deliver_share net ~src ~dst ~label y =
  match deliver net ~src ~dst ~label [ y ] with
  | [ y' ] -> y'
  | _ ->
    (* a dropped share is an unrecoverable column hole; surface it as a
       partition so callers keep their existing failure handling *)
    raise (Net.Network.Partitioned { src; dst; reason = "share dropped" })

let send_bignums net ~src ~dst ~label values =
  let wire = deliver net ~src ~dst ~label values in
  let bytes = List.fold_left (fun acc v -> acc + bignum_wire_size v) 0 wire in
  Net.Network.send_exn net ~src ~dst ~label ~bytes;
  List.iter
    (fun v ->
      observe net ~node:dst ~sensitivity:Net.Ledger.Ciphertext ~tag:label
        (Bignum.to_hex v))
    wire;
  wire

let send_residents net ~(scheme : Crypto.Commutative.scheme) ~src ~dst ~label
    residents =
  (* One ring hop of Montgomery-resident ciphertexts.  What goes on the
     wire — bytes accounted, ledger observations, adversary tampering,
     round-guard commitments — is exactly the canonical views, so the
     transcript is byte-identical to [send_bignums] on them.  Only the
     receiver's bookkeeping differs: an untampered delivery keeps each
     chained residue ([resync] compares views for free); tampering or
     drops re-enter the domain from the delivered payload, exactly as a
     real receiver must. *)
  let views = List.map scheme.view residents in
  let wire = deliver net ~src ~dst ~label views in
  let bytes = List.fold_left (fun acc v -> acc + bignum_wire_size v) 0 wire in
  Net.Network.send_exn net ~src ~dst ~label ~bytes;
  List.iter
    (fun v ->
      observe net ~node:dst ~sensitivity:Net.Ledger.Ciphertext ~tag:label
        (Bignum.to_hex v))
    wire;
  if List.length wire = List.length residents then
    List.map2 scheme.resync residents wire
  else scheme.enter_many wire
