open Numtheory

type party = { node : Net.Node_id.t; set : string list }

type result = {
  intersection : string list;
  encrypted_by_all : (Net.Node_id.t * Bignum.t list) list;
}

module String_set = Set.Make (String)

let dedupe items = String_set.elements (String_set.of_list items)

(* The shared ring-encryption pass: every set ends up encrypted under
   every party's key and collected at the receiver.  Returns the
   parties' deduplicated plaintexts (for owner-side resolution) and the
   fully-encrypted sets keyed by origin. *)
let ring_encrypt ~net ~scheme ~receiver parties =
  let ring = List.map (fun p -> p.node) parties in
  let keypairs =
    List.map (fun p -> (p.node, scheme.Crypto.Commutative.fresh_keypair ())) parties
  in
  let keypair_of node =
    snd (List.find (fun (n, _) -> Net.Node_id.equal n node) keypairs)
  in
  (* Each party owns its (deduplicated) plaintext set and records it. *)
  let own_sets =
    List.map
      (fun p ->
        let set = dedupe p.set in
        List.iter
          (fun e ->
            Proto_util.observe net ~node:p.node
              ~sensitivity:Net.Ledger.Plaintext ~tag:"intersection:own-set" e)
          set;
        (p.node, set))
      parties
  in
  (* First encryption layer is local: origin encrypts its own encoding.
     Ciphertexts enter the Montgomery residue domain here, once per
     protocol run, and stay resident across every relay hop — the wire
     always carries the canonical views, so transcripts are
     byte-identical to the pre-resident protocol. *)
  let initial =
    Proto_util.span net "smc.intersection.transform" (fun () ->
        List.map
          (fun (node, set) ->
            let kp = keypair_of node in
            let cts =
              kp.Crypto.Commutative.enc_res_many
                (scheme.Crypto.Commutative.enter_many
                   (List.map scheme.Crypto.Commutative.encode set))
            in
            (node, node, cts))
          own_sets)
  in
  (* n-1 relay hops: holder forwards; next node adds its layer. *)
  let n = List.length parties in
  let rec hops state hop =
    if hop >= n then state
    else begin
      let state =
        List.map
          (fun (origin, holder, cts) ->
            let next = Proto_util.ring_next ring holder in
            let cts =
              Proto_util.send_residents net ~scheme ~src:holder ~dst:next
                ~label:"intersection:relay" cts
            in
            let kp = keypair_of next in
            (origin, next, kp.Crypto.Commutative.enc_res_many cts))
          state
      in
      Proto_util.round ~label:"intersection" net;
      hops state (hop + 1)
    end
  in
  let final = Proto_util.span net "smc.intersection.exchange" (fun () ->
      hops initial 1)
  in
  (* Ship every fully-encrypted set to the receiver.  No further crypto
     happens after this hop, so residents convert back to canonical
     views here — the once-per-run domain exit. *)
  let encrypted_by_all =
    Proto_util.span net "smc.intersection.collect" (fun () ->
        let encrypted =
          List.map
            (fun (origin, holder, cts) ->
              let views = List.map scheme.Crypto.Commutative.view cts in
              let cts =
                if Net.Node_id.equal holder receiver then views
                else
                  Proto_util.send_bignums net ~src:holder ~dst:receiver
                    ~label:"intersection:collect" views
              in
              (origin, cts))
            final
        in
        Proto_util.round ~label:"intersection" net;
        encrypted)
  in
  (own_sets, encrypted_by_all)

(* Equal fully-encrypted values <=> equal plaintexts (commutativity +
   injectivity, eqs 6-7): intersect on hex images. *)
let common_ciphertexts encrypted_by_all =
  let hex_sets =
    List.map
      (fun (_, cts) -> String_set.of_list (List.map Bignum.to_hex cts))
      encrypted_by_all
  in
  match hex_sets with
  | [] -> String_set.empty
  | first :: rest -> List.fold_left String_set.inter first rest

let run ~net ~scheme ~receiver parties =
  if List.length parties < 2 then
    invalid_arg "Set_intersection.run: need at least 2 parties";
  if not (List.exists (fun p -> Net.Node_id.equal p.node receiver) parties)
  then invalid_arg "Set_intersection.run: receiver must be a party";
  Proto_util.span net "smc.intersection" (fun () ->
      let own_sets, encrypted_by_all =
        ring_encrypt ~net ~scheme ~receiver parties
      in
      Proto_util.span net "smc.intersection.reveal" (fun () ->
          let common = common_ciphertexts encrypted_by_all in
          (* The receiver resolves plaintexts through its own
             correspondence. *)
          let receiver_plain =
            snd
              (List.find (fun (n', _) -> Net.Node_id.equal n' receiver) own_sets)
          in
          let receiver_cts =
            snd
              (List.find
                 (fun (n', _) -> Net.Node_id.equal n' receiver)
                 encrypted_by_all)
          in
          (* Tolerant zip: a Byzantine drop can leave the receiver with
             fewer fully-encrypted values than plaintexts.  The honest
             path always has equal lengths; under attack the receiver
             resolves what it can (the round guard has already recorded
             the accusation). *)
          let rec zip xs ys =
            match (xs, ys) with
            | x :: xs, y :: ys -> (x, y) :: zip xs ys
            | _, _ -> []
          in
          let intersection =
            List.filter_map
              (fun (plain, ct) ->
                if String_set.mem (Bignum.to_hex ct) common then Some plain
                else None)
              (zip receiver_plain receiver_cts)
            |> List.sort compare
          in
          List.iter
            (fun e ->
              Proto_util.observe net ~node:receiver
                ~sensitivity:Net.Ledger.Aggregate ~tag:"intersection:result" e)
            intersection;
          { intersection; encrypted_by_all }))

let cardinality ~net ~scheme ~receiver parties =
  if List.length parties < 2 then
    invalid_arg "Set_intersection.cardinality: need at least 2 parties";
  Proto_util.span net "smc.intersection" (fun () ->
      let _, encrypted_by_all = ring_encrypt ~net ~scheme ~receiver parties in
      let count = String_set.cardinal (common_ciphertexts encrypted_by_all) in
      Proto_util.observe net ~node:receiver ~sensitivity:Net.Ledger.Aggregate
        ~tag:"intersection:cardinality" (string_of_int count);
      count)

let naive ~net ~coordinator parties =
  let sets =
    List.map
      (fun p ->
        let set = dedupe p.set in
        if not (Net.Node_id.equal p.node coordinator) then begin
          let bytes = List.fold_left (fun a e -> a + String.length e) 0 set in
          Net.Network.send_exn net ~src:p.node ~dst:coordinator
            ~label:"intersection:naive" ~bytes
        end;
        List.iter
          (fun e ->
            Proto_util.observe net ~node:coordinator
              ~sensitivity:Net.Ledger.Plaintext ~tag:"intersection:naive" e)
          set;
        String_set.of_list set)
      parties
  in
  Proto_util.round net;
  match sets with
  | [] -> []
  | first :: rest ->
    String_set.elements (List.fold_left String_set.inter first rest)
