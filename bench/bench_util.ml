(* Shared plumbing for the benchmark/report harness: plain-text tables
   and a thin wrapper over bechamel's OLS pipeline. *)

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let print_table ~header rows =
  let columns = List.length header in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (try List.nth row i with _ -> "")))
          (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun c w -> Printf.sprintf "%-*s" w c) cells widths)
  in
  print_endline (line header);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row ->
      let row =
        if List.length row < columns then
          row @ List.init (columns - List.length row) (fun _ -> "")
        else row
      in
      print_endline (line row))
    rows

(* Measure each (name, thunk) with bechamel OLS; returns ns/run. *)
let time_ns ?(quota_s = 0.25) cases =
  let open Bechamel in
  let tests =
    List.map
      (fun (name, fn) -> Test.make ~name (Staged.stage fn))
      cases
  in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let result = Hashtbl.find analyzed name in
      let ns =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      (name, ns))
    cases

(* Median wall-clock over [repeats] explicit runs of [f] — for
   operations seconds-long at scale, where bechamel's quota-driven OLS
   loop would either starve (one sample) or run for minutes.  The
   repeats are real back-to-back executions; the median discards
   one-off scheduler noise without averaging it in. *)
let median_ms ~repeats f =
  let times =
    List.init repeats (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        1000.0 *. (Unix.gettimeofday () -. t0))
  in
  match List.sort compare times with
  | [] -> nan
  | sorted -> List.nth sorted (repeats / 2)

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns
