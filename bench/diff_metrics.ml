(* Compare two metrics JSON files produced by `main.exe --metrics-out`.

   Usage: diff_metrics BASELINE CURRENT [--threshold PCT]

   Prints one line per counter whose value drifted, and exits non-zero
   when any counter moved by more than the threshold (default 10%) —
   the CI job runs this with continue-on-error so drift warns without
   blocking. *)

let threshold = ref 10.0

let read_counters ~role path =
  match Obs.Sink.read_counters ~path with
  | Ok counters -> counters
  | Error (Obs.Sink.Missing_file _) ->
    Printf.eprintf "diff_metrics: missing %s file %s\n" role path;
    if role = "baseline" then
      prerr_endline
        "  regenerate with: dune exec bench/main.exe -- <experiment> \
         --metrics-out <path>";
    exit 2
  | Error e ->
    Printf.eprintf "diff_metrics: malformed %s: %s\n" role
      (Obs.Sink.read_error_to_string e);
    exit 2

let () =
  let positional = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--threshold" when !i + 1 < Array.length argv ->
      incr i;
      threshold := float_of_string argv.(!i)
    | arg -> positional := arg :: !positional);
    incr i
  done;
  match List.rev !positional with
  | [ baseline_path; current_path ] ->
    let baseline = read_counters ~role:"baseline" baseline_path in
    let current = read_counters ~role:"current" current_path in
    let names =
      List.sort_uniq compare (List.map fst baseline @ List.map fst current)
    in
    let worst = ref 0.0 in
    let drifted = ref 0 in
    List.iter
      (fun name ->
        let b = Option.value ~default:0 (List.assoc_opt name baseline) in
        let c = Option.value ~default:0 (List.assoc_opt name current) in
        if b <> c then begin
          let pct =
            if b = 0 then infinity
            else 100.0 *. Float.abs (float_of_int (c - b)) /. float_of_int b
          in
          incr drifted;
          if pct > !worst then worst := pct;
          Printf.printf "%-40s %10d -> %10d  (%+d, %s)\n" name b c (c - b)
            (if pct = infinity then "new/removed"
             else Printf.sprintf "%.1f%%" pct)
        end)
      names;
    if !drifted = 0 then begin
      Printf.printf "no counter drift (%d counters compared)\n"
        (List.length names);
      exit 0
    end
    else if !worst > !threshold then begin
      Printf.printf "DRIFT: %d counter(s) changed, worst %.1f%% > %.1f%%\n"
        !drifted !worst !threshold;
      exit 1
    end
    else begin
      Printf.printf "%d counter(s) changed, all within %.1f%% threshold\n"
        !drifted !threshold;
      exit 0
    end
  | _ ->
    prerr_endline "usage: diff_metrics BASELINE CURRENT [--threshold PCT]";
    exit 2
