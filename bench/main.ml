(* Benchmark & reproduction harness.

   One section per paper artifact (see DESIGN.md §4 for the experiment
   index): the worked-example tables T1–T6, the protocol walkthroughs
   F1–F7, the §5 confidentiality formulas E10–E13, and the cost
   experiments P1–P5.  Running with no arguments reproduces everything;
   [--skip-timing] omits the bechamel measurements (useful in CI),
   [--only ID] runs a single experiment. *)

open Numtheory
open Dla
open Bench_util

let skip_timing = ref false
let only = ref None
let metrics_out = ref None

let auditor = Net.Node_id.Auditor

let q s =
  match Query.parse s with
  | Ok query -> query
  | Error e -> failwith (Printf.sprintf "query %S: %s" s e)

let fi = string_of_int
let ff f = Printf.sprintf "%.3f" f

(* ------------------------------------------------------------------ *)
(* T1 – T6: the worked-example tables                                  *)
(* ------------------------------------------------------------------ *)

let exp_tables () =
  section "T1: Table 1 — global event log (reassembled from fragments)";
  let cluster, glsns = Workload.Paper_example.build () in
  print_string (Workload.Paper_example.render_global_table cluster glsns);
  print_endline
    "(glsn's are allocator-assigned; the paper's 139aef79->139aef80 step\n\
     treats the trailing digits decimally — ours count in hex, a purely\n\
     cosmetic difference.)";
  section "T2-T5: per-node fragment tables";
  print_string (Workload.Paper_example.render_fragment_tables cluster);
  section "T6: access-control table (identical copy at every node)";
  print_string (Workload.Paper_example.render_acl_table cluster)

(* ------------------------------------------------------------------ *)
(* F1 / F2: centralized baseline vs distributed logging                *)
(* ------------------------------------------------------------------ *)

let count_plaintext ledger node =
  List.length
    (List.filter
       (fun (s, _, _) -> s = Net.Ledger.Plaintext)
       (Net.Ledger.observations ledger ~node))

let exp_fig1 () =
  section "F1: centralized auditing model (Figure 1) — the baseline";
  let central, _ = Workload.Paper_example.build_centralized () in
  let ledger = Net.Network.ledger (Centralized.net central) in
  let seen = count_plaintext ledger (Centralized.auditor central) in
  Printf.printf
    "single auditor stores %d records and observed %d plaintext attribute \
     values\n"
    (Centralized.record_count central)
    seen;
  let matches = Centralized.query central (q {|protocl = "UDP" && C1 > 30|}) in
  Printf.printf "query {protocl = UDP && C1 > 30} -> %s\n"
    (String.concat ", " (List.map Glsn.to_string matches));
  print_endline
    "=> every attribute of every record is exposed to one party: the\n\
    \   single-point-of-trust problem the DLA cluster removes."

let exp_fig2 () =
  section "F2: distributed confidential logging (Figure 2)";
  let cluster, glsns = Workload.Paper_example.build () in
  let ledger = Net.Network.ledger (Cluster.net cluster) in
  let rows =
    List.map
      (fun node ->
        let store = Cluster.store_of cluster node in
        let attrs =
          String.concat ","
            (List.map Attribute.to_string
               (Attribute.Set.elements (Storage.supported store)))
        in
        [ Net.Node_id.to_string node; attrs;
          fi (Storage.record_count store);
          fi (count_plaintext ledger node)
        ])
      (Cluster.nodes cluster)
  in
  print_table
    ~header:[ "node"; "supported attrs"; "rows"; "plaintext cells seen" ]
    rows;
  let total_attrs = 7 * List.length glsns in
  Printf.printf
    "\ntotal attribute cells: %d; no single node saw more than its own \
     columns.\n"
    total_attrs;
  let stats = Net.Network.stats (Cluster.net cluster) in
  Printf.printf "logging cost: %d messages, %d bytes, %d rounds\n"
    stats.Net.Network.messages stats.Net.Network.bytes
    stats.Net.Network.rounds

(* ------------------------------------------------------------------ *)
(* F3: distributed query decomposition                                 *)
(* ------------------------------------------------------------------ *)

let exp_fig3 () =
  section "F3: confidential query processing (Figure 3)";
  let cluster, _ = Workload.Paper_example.build () in
  let criteria =
    q {|time >= 0 && (id = "U1" || C2 > 100.00) && id != tid|}
  in
  Printf.printf "Q = %s\n" (Query.to_string criteria);
  let normalized = Query.normalize criteria in
  Printf.printf "Q_N = %s\n" (Format.asprintf "%a" Query.pp_normalized normalized);
  (match Planner.plan (Cluster.fragmentation cluster) normalized with
  | Error e -> Printf.printf "plan error: %s\n" (Audit_error.to_string e)
  | Ok plan ->
    let rows =
      List.mapi
        (fun i clause ->
          let kind = if clause.Planner.is_cross then "cross" else "local" in
          [ Printf.sprintf "SQ%d" (i + 1);
            fi (List.length clause.Planner.atoms);
            kind;
            Net.Node_id.to_string clause.Planner.clause_home
          ])
        plan.Planner.clauses
    in
    print_table ~header:[ "subquery"; "atoms"; "kind"; "home" ] rows;
    let s, t, qc = Confidentiality.c_auditing_params plan in
    Printf.printf "s=%d atoms, t=%d cross, q=%d conjuncts\n" s t qc);
  Net.Network.reset_stats (Cluster.net cluster);
  match Auditor_engine.run cluster ~auditor (Auditor_engine.Criteria criteria) with
  | Error e -> Printf.printf "audit error: %s\n" (Audit_error.to_string e)
  | Ok audit ->
    Printf.printf "%s\n" (Format.asprintf "%a" Auditor_engine.pp_audit audit)

(* ------------------------------------------------------------------ *)
(* F4: secure set intersection walkthrough                             *)
(* ------------------------------------------------------------------ *)

let figure4_parties nodes =
  match nodes with
  | [ p1; p2; p3 ] ->
    [ { Smc.Set_intersection.node = p1; set = [ "c"; "d"; "e" ] };
      { Smc.Set_intersection.node = p2; set = [ "d"; "e"; "f" ] };
      { Smc.Set_intersection.node = p3; set = [ "e"; "f"; "g" ] }
    ]
  | _ -> assert false

let exp_fig4 () =
  section "F4: secure set intersection (Figure 4)";
  print_endline
    "S1={c,d,e} at P1, S2={d,e,f} at P2, S3={e,f,g} at P3; target: {e}";
  let rng = Prng.create ~seed:44 in
  let params = Crypto.Pohlig_hellman.generate_params rng ~bits:128 in
  let scheme = Crypto.Commutative.pohlig_hellman rng params in
  let net = Net.Network.of_config (Net.Config.make ()) in
  let nodes = [ Net.Node_id.Dla 1; Net.Node_id.Dla 2; Net.Node_id.Dla 3 ] in
  let result =
    Smc.Set_intersection.run ~net ~scheme ~receiver:(List.hd nodes)
      (figure4_parties nodes)
  in
  let rows =
    List.map
      (fun (origin, cts) ->
        [ Net.Node_id.to_string origin;
          String.concat " "
            (List.map
               (fun ct ->
                 let hex = Bignum.to_hex ct in
                 "E…" ^ String.sub hex (max 0 (String.length hex - 8)) 8)
               cts)
        ])
      result.Smc.Set_intersection.encrypted_by_all
  in
  print_table ~header:[ "origin"; "after all 3 encryption layers" ] rows;
  Printf.printf "intersection resolved at receiver: {%s}\n"
    (String.concat ", " result.Smc.Set_intersection.intersection);
  let stats = Net.Network.stats net in
  Printf.printf "cost: %d messages, %d bytes, %d rounds\n"
    stats.Net.Network.messages stats.Net.Network.bytes stats.Net.Network.rounds

(* ------------------------------------------------------------------ *)
(* F6 / F7: membership, evidence chain, r-binding                      *)
(* ------------------------------------------------------------------ *)

let exp_fig6 () =
  section "F6: DLA membership growth and the evidence chain (Figure 6)";
  let net = Net.Network.of_config (Net.Config.make ()) in
  let m = Membership.found ~net ~authority_seed:7 ~identity:"org-alpha" in
  let invite inviter identity pp sc =
    match Membership.invite m ~inviter ~invitee_identity:identity ~pp ~sc with
    | Ok member -> member
    | Error e -> failwith e
  in
  let founder = List.hd (Membership.members m) in
  let m1 = invite founder.Membership.pseudonym "org-beta" "store 4 attrs" "99.9% uptime" in
  let m2 = invite m1.Membership.pseudonym "org-gamma" "store 2 attrs" "99.5% uptime" in
  let _ = invite m2.Membership.pseudonym "org-delta" "store 3 attrs" "99.0% uptime" in
  print_table
    ~header:[ "member"; "pseudonym"; "invite authority" ]
    (List.map
       (fun mem ->
         [ mem.Membership.identity; mem.Membership.pseudonym;
           (if mem.Membership.has_invite_authority then "held" else "spent")
         ])
       (Membership.members m));
  (match Membership.verify_chain m with
  | Ok () -> Printf.printf "chain of %d pieces verifies\n" (List.length (Membership.chain m))
  | Error e -> Printf.printf "chain INVALID: %s\n" e);
  subsection "a member reuses its single-use invitation authority";
  (match
     Membership.rogue_invite m ~inviter:m1.Membership.pseudonym
       ~invitee_identity:"org-mallory" ~pp:"p" ~sc:"s"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Membership.detect_cheaters m with
  | [ (pseudonym, identity) ] ->
    Printf.printf "double-invite detected: %s exposed as %S\n" pseudonym identity
  | other -> Printf.printf "unexpected cheater list (%d)\n" (List.length other))

let exp_fig7 () =
  section "F7: r-binding three-way handshake (Figure 7)";
  let authority = Evidence.Authority.create ~seed:11 in
  let token, secrets = Evidence.Authority.issue authority ~identity:"org-py" in
  let pp = "PP: store {time, C4}; answer integrity circulations" in
  let sc = "SC: provide 99.9% uptime; keep 90-day retention" in
  Printf.printf "1. PP  (Py -> Px): %s\n" pp;
  Printf.printf "2. SC  (Px -> Py): %s\n" sc;
  let piece =
    Evidence.make_piece ~inviter_token:token ~inviter_secrets:secrets
      ~invitee:"nym:px" ~pp ~sc
  in
  Printf.printf "3. RE  (Py -> Px): evidence piece, challenge = H(transcript)\n";
  (match Evidence.verify_piece authority piece with
  | Ok () -> print_endline "verification: piece valid";
  | Error e -> Printf.printf "verification failed: %s\n" e);
  let tampered = { piece with Evidence.service_commitment = "SC: 1% uptime" } in
  (match Evidence.verify_piece authority tampered with
  | Ok () -> print_endline "TAMPERED TERMS ACCEPTED (bug!)"
  | Error e -> Printf.printf "altering SC after the fact: rejected (%s)\n" e)

(* ------------------------------------------------------------------ *)
(* E10 – E13: confidentiality formulas                                 *)
(* ------------------------------------------------------------------ *)

let exp_c_store () =
  section "E10: store confidentiality C_store = v*u/w (eq 10)";
  let w = 8 in
  let node_counts = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun v ->
        fi v
        :: List.map
             (fun n ->
               (* v undefined + (w-v) defined attrs, spread over n nodes *)
               let attrs =
                 List.init w (fun i ->
                     if i < v then Attribute.undefined (i + 1)
                     else Attribute.defined (Printf.sprintf "a%d" i))
               in
               let record =
                 Log_record.make ~glsn:(Glsn.of_string "1")
                   ~origin:(Net.Node_id.User 0)
                   ~attributes:(List.map (fun a -> (a, Value.Int 1)) attrs)
               in
               let frag =
                 Fragmentation.round_robin ~nodes:(Net.Node_id.dla_ring n)
                   ~attrs
               in
               ff (Confidentiality.c_store frag record))
             node_counts)
      [ 0; 2; 4; 6; 8 ]
  in
  print_table
    ~header:("v \\ nodes" :: List.map fi node_counts)
    rows;
  Printf.printf
    "(w = %d attributes; more undefined attributes and wider spread both \
     raise C_store.)\n"
    w

let exp_c_auditing () =
  section "E11: auditing confidentiality C_auditing = (t+q)/(s+q) (eq 11)";
  let cluster, _ = Workload.Paper_example.build () in
  let frag = Cluster.fragmentation cluster in
  let queries =
    [ {|C1 > 30|};
      {|id = "U1" && C1 > 30|};
      {|C2 = C3|};
      {|C1 > 30 && C2 = C3|};
      {|time >= 0 && id != tid && C1 < 50|};
      {|(id = "U1" || C2 > 100.00) && C2 = C3 && time >= 0|}
    ]
  in
  let rows =
    List.map
      (fun s ->
        match Planner.plan frag (Query.normalize (q s)) with
        | Error e -> [ s; "error: " ^ Audit_error.to_string e ]
        | Ok plan ->
          let sa, t, qc = Confidentiality.c_auditing_params plan in
          [ s; fi sa; fi t; fi qc; ff (Confidentiality.c_auditing plan) ])
      queries
  in
  print_table ~header:[ "query"; "s"; "t"; "q"; "C_auditing" ] rows

let exp_c_dla () =
  section "E12/E13: C_query and C_DLA vs cluster width (eqs 12-13)";
  let attrs =
    List.init 8 (fun i ->
        if i < 4 then Attribute.undefined (i + 1)
        else Attribute.defined (Printf.sprintf "a%d" i))
  in
  let record_attrs = List.map (fun a -> (a, Value.Int 1)) attrs in
  let records =
    List.init 5 (fun i ->
        Log_record.make
          ~glsn:(Glsn.of_string (Printf.sprintf "%x" (i + 1)))
          ~origin:(Net.Node_id.User 0) ~attributes:record_attrs)
  in
  let queries =
    [ q "C1 > 3"; q "C1 = C2 && a4 < 7"; q "C3 = C4 && C1 = a5 && a6 >= 0" ]
  in
  let rows =
    List.map
      (fun n ->
        let frag =
          Fragmentation.round_robin ~nodes:(Net.Node_id.dla_ring n) ~attrs
        in
        match Confidentiality.c_dla frag ~queries ~records with
        | Ok c -> [ fi n; ff c ]
        | Error e -> [ fi n; "error: " ^ e ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  print_table ~header:[ "DLA nodes"; "C_DLA" ] rows;
  print_endline
    "(spreading the same attributes over more nodes increases both the\n\
     covering number u and the fraction of cross predicates t.)"

(* ------------------------------------------------------------------ *)
(* P1: secure-sum cost — relaxed vs classical vs naive                 *)
(* ------------------------------------------------------------------ *)

let sum_p = Bignum.of_string "2305843009213693951"

let run_shamir_sum n =
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties =
    List.init n (fun i ->
        { Smc.Sum.node = Net.Node_id.Dla i; value = Bignum.of_int (i + 1) })
  in
  let total =
    Smc.Sum.run ~net ~rng:(Prng.create ~seed:n) ~p:sum_p
      ~k:((n / 2) + 1) ~receiver:auditor parties
  in
  (total, Net.Network.stats net)

let run_circuit_sum n ~width =
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties =
    List.init n (fun i ->
        { Smc.Circuit_baseline.node = Net.Node_id.Dla i;
          value = Bignum.of_int (i + 1) })
  in
  let total =
    Smc.Circuit_baseline.secure_sum ~net ~rng:(Prng.create ~seed:n)
      ~dealer:(Net.Node_id.Ttp "dealer") ~receiver:auditor ~width parties
  in
  (total, Net.Network.stats net)

let run_naive_sum n =
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties =
    List.init n (fun i ->
        { Smc.Sum.node = Net.Node_id.Dla i; value = Bignum.of_int (i + 1) })
  in
  let total = Smc.Sum.naive ~net ~coordinator:auditor parties in
  (total, Net.Network.stats net)

let paillier_keys =
  lazy (Crypto.Paillier.generate (Prng.create ~seed:77) ~bits:128)

let run_paillier_sum n =
  let public, secret = Lazy.force paillier_keys in
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties =
    List.init n (fun i ->
        { Smc.Sum.node = Net.Node_id.Dla i; value = Bignum.of_int (i + 1) })
  in
  let total =
    Smc.Sum.run_ttp_coordinated ~net ~rng:(Prng.create ~seed:n) ~public
      ~secret ~coordinator:(Net.Node_id.Ttp "agg") ~receiver:auditor parties
  in
  (total, Net.Network.stats net)

let exp_cost_sum () =
  section
    "P1: secure sum — relaxed (Shamir) vs classical circuit vs naive\n\
     (the quantitative form of §3's 'existing protocols are too costly')";
  let width = 16 in
  let rows =
    List.map
      (fun n ->
        let _, naive = run_naive_sum n in
        let _, paillier = run_paillier_sum n in
        let _, shamir = run_shamir_sum n in
        let _, circuit = run_circuit_sum n ~width in
        [ fi n;
          fi naive.Net.Network.messages;
          fi paillier.Net.Network.messages;
          fi shamir.Net.Network.messages;
          fi circuit.Net.Network.messages;
          fi (Smc.Circuit_baseline.and_gate_messages ~n * (n - 1) * width)
        ])
      [ 2; 3; 4; 6; 8 ]
  in
  print_table
    ~header:
      [ "n"; "naive msgs"; "paillier (TTP) msgs"; "shamir msgs";
        "circuit msgs"; "circuit analytic (gates*cost)" ]
    rows;
  if not !skip_timing then begin
    subsection "wall-clock (bechamel, n = 4)";
    let timings =
      time_ns
        [ ("naive", (fun () -> ignore (run_naive_sum 4)));
          ("paillier (TTP)", (fun () -> ignore (run_paillier_sum 4)));
          ("shamir", (fun () -> ignore (run_shamir_sum 4)));
          ("circuit w=16", fun () -> ignore (run_circuit_sum 4 ~width))
        ]
    in
    print_table ~header:[ "protocol"; "time/run" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings)
  end;
  print_endline
    "=> shape: the TTP-coordinated Paillier variant needs only n+1\n\
     messages (the §3 claim that a coordinating TTP slashes cost); the\n\
     peer-to-peer Shamir protocol costs O(n^2) small messages; the\n\
     classical circuit protocol sits 1-2 orders of magnitude above both\n\
     and grows with bit width; naive is cheapest but exposes every input."

(* ------------------------------------------------------------------ *)
(* P2: secure set intersection cost                                    *)
(* ------------------------------------------------------------------ *)

let intersection_parties ~n ~size =
  List.init n (fun p ->
      { Smc.Set_intersection.node = Net.Node_id.Dla p;
        set = List.init size (fun i -> Printf.sprintf "elem-%d-%d" (i + p) i)
      })

let run_intersection scheme ~n ~size =
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties = intersection_parties ~n ~size in
  let result =
    Smc.Set_intersection.run ~net ~scheme ~receiver:(Net.Node_id.Dla 0) parties
  in
  (result, Net.Network.stats net)

let exp_cost_intersection () =
  section "P2: secure set intersection — cost vs set size and parties";
  let rng = Prng.create ~seed:99 in
  let xor_scheme =
    Crypto.Commutative.xor_pad rng (Crypto.Xor_pad.params ~width_bits:256)
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun size ->
            let _, secure = run_intersection xor_scheme ~n ~size in
            let naive_net = Net.Network.of_config (Net.Config.make ()) in
            let _ =
              Smc.Set_intersection.naive ~net:naive_net
                ~coordinator:(Net.Node_id.Dla 0)
                (intersection_parties ~n ~size)
            in
            let naive = Net.Network.stats naive_net in
            [ fi n; fi size;
              fi secure.Net.Network.messages; fi secure.Net.Network.bytes;
              fi naive.Net.Network.messages; fi naive.Net.Network.bytes
            ])
          [ 8; 32; 128 ])
      [ 2; 3; 5 ]
  in
  print_table
    ~header:
      [ "n"; "set size"; "secure msgs"; "secure bytes"; "naive msgs";
        "naive bytes" ]
    rows;
  if not !skip_timing then begin
    subsection "wall-clock per protocol run (n=3, |S|=32)";
    let ph_params =
      Crypto.Pohlig_hellman.generate_params (Prng.create ~seed:1) ~bits:128
    in
    let ph_scheme =
      Crypto.Commutative.pohlig_hellman (Prng.create ~seed:2) ph_params
    in
    let timings =
      time_ns
        [ ( "xor-pad scheme",
            fun () -> ignore (run_intersection xor_scheme ~n:3 ~size:32) );
          ( "pohlig-hellman 128",
            fun () -> ignore (run_intersection ph_scheme ~n:3 ~size:32) );
          ( "naive plaintext",
            fun () ->
              let net = Net.Network.of_config (Net.Config.make ()) in
              ignore
                (Smc.Set_intersection.naive ~net
                   ~coordinator:(Net.Node_id.Dla 0)
                   (intersection_parties ~n:3 ~size:32)) )
        ]
    in
    print_table ~header:[ "variant"; "time/run" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings)
  end

(* ------------------------------------------------------------------ *)
(* P3: commutative cipher cost                                         *)
(* ------------------------------------------------------------------ *)

let exp_cost_cipher () =
  section "P3: commutative cipher cost vs modulus size (ablation)";
  if !skip_timing then print_endline "(timing skipped)"
  else begin
    let cases =
      List.map
        (fun bits ->
          let rng = Prng.create ~seed:bits in
          let params = Crypto.Pohlig_hellman.generate_params rng ~bits in
          let key = Crypto.Pohlig_hellman.generate_key rng params in
          let m = Crypto.Pohlig_hellman.encode params "payload" in
          ( Printf.sprintf "pohlig-hellman %d-bit" bits,
            fun () -> ignore (Crypto.Pohlig_hellman.encrypt params key m) ))
        [ 64; 128; 256; 512 ]
    in
    let xor_case =
      let rng = Prng.create ~seed:5 in
      let params = Crypto.Xor_pad.params ~width_bits:256 in
      let key = Crypto.Xor_pad.generate_key rng params in
      let m = Crypto.Xor_pad.encode params "payload" in
      ("xor-pad 256-bit", fun () -> ignore (Crypto.Xor_pad.encrypt params key m))
    in
    let timings = time_ns (cases @ [ xor_case ]) in
    print_table ~header:[ "cipher"; "encrypt time" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings);
    print_endline
      "=> exponentiation cost grows ~cubically with modulus bits; the XOR\n\
       pad is orders of magnitude cheaper but leaks ciphertext equality\n\
       patterns under key reuse (see DESIGN.md ablation notes).";
    subsection "modexp implementation ablation (Montgomery vs division)";
    let rng = Prng.create ~seed:61 in
    let modexp_cases =
      List.concat_map
        (fun bits ->
          let p = Primes.random_prime rng ~bits in
          let b = Prng.bignum_below rng p in
          let e = Prng.bignum_below rng p in
          let ctx = Montgomery.create p in
          [ ( Printf.sprintf "classic %d-bit" bits,
              fun () -> ignore (Modular.pow_classic b e ~m:p) );
            ( Printf.sprintf "montgomery %d-bit" bits,
              fun () -> ignore (Montgomery.pow ctx b e) )
          ])
        [ 128; 256; 512 ]
    in
    let timings = time_ns modexp_cases in
    print_table ~header:[ "implementation"; "time/modexp" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings);
    print_endline
      "=> Modular.pow auto-dispatches to the Montgomery path for odd\n\
       multi-limb moduli, which is what the cipher rows above use."
  end

(* ------------------------------------------------------------------ *)
(* P13: modexp acceleration layer                                      *)
(* ------------------------------------------------------------------ *)

let run_union scheme ~n ~size =
  let net = Net.Network.of_config (Net.Config.make ()) in
  let parties =
    List.init n (fun p ->
        { Smc.Set_union.node = Net.Node_id.Dla p;
          set = List.init size (fun i -> Printf.sprintf "elem-%d-%d" (i + p) i)
        })
  in
  Smc.Set_union.run ~net ~scheme ~rng:(Prng.create ~seed:76)
    ~receiver:(Net.Node_id.Dla 0) parties

let exp_modexp () =
  section
    "P13: modexp acceleration — context cache, batch exponentiation, \
     protocol wall time";
  (* Timing first: bechamel loops pollute the global counters, so the
     registry is reset before the deterministic counter workload below —
     the emitted BENCH_modexp.json counters are byte-stable with or
     without --skip-timing. *)
  let speedups = ref [] in
  let ablation_speedups = ref [] in
  if not !skip_timing then begin
    subsection
      "ring-encryption microbench: classic vs montgomery vs batch \
       (fixed 256-bit key exponent)";
    let rng = Prng.create ~seed:71 in
    let params = Crypto.Pohlig_hellman.generate_params rng ~bits:256 in
    let key = Crypto.Pohlig_hellman.generate_key rng params in
    let p = params.Crypto.Pohlig_hellman.p in
    let e = key.Crypto.Pohlig_hellman.e in
    let rows =
      List.map
        (fun size ->
          let ms =
            List.init size (fun i ->
                Crypto.Pohlig_hellman.encode params
                  (Printf.sprintf "elem-%d" i))
          in
          let timings =
            time_ns ~quota_s:0.5
              [ ( "classic",
                  fun () ->
                    List.iter
                      (fun x -> ignore (Modular.pow_classic x e ~m:p))
                      ms );
                ( "montgomery",
                  fun () ->
                    List.iter (fun x -> ignore (Modular.pow x e ~m:p)) ms );
                ("batch", fun () -> ignore (Modular.pow_many ms e ~m:p))
              ]
          in
          let t name = List.assoc name timings in
          let classic = t "classic"
          and mont = t "montgomery"
          and batch = t "batch" in
          speedups :=
            (size, classic /. batch, mont /. batch) :: !speedups;
          [ fi size; pp_ns classic; pp_ns mont; pp_ns batch;
            Printf.sprintf "%.1fx" (classic /. batch);
            Printf.sprintf "%.2fx" (mont /. batch)
          ])
        [ 16; 64; 256 ]
    in
    print_table
      ~header:
        [ "batch size"; "classic"; "montgomery"; "batch";
          "batch vs classic"; "batch vs montgomery" ]
      rows;
    print_endline
      "=> the headline win is batch vs the element-at-a-time classic\n\
       path: Montgomery representation plus one shared fixed-exponent\n\
       plan.  Relative to scalar Montgomery the batch saves only the\n\
       per-call window recoding, table allocation and cache lookup —\n\
       a few percent at cryptographic sizes (the ~300 inner\n\
       multiplications dominate), within bechamel's run-to-run noise.";
    subsection "protocol wall time (pohlig-hellman 256-bit, n = 3)";
    let ph_scheme =
      Crypto.Commutative.pohlig_hellman (Prng.create ~seed:72) params
    in
    let timings =
      time_ns
        [ ( "intersection |S|=16",
            fun () -> ignore (run_intersection ph_scheme ~n:3 ~size:16) );
          ( "intersection |S|=64",
            fun () -> ignore (run_intersection ph_scheme ~n:3 ~size:64) );
          ( "union |S|=16",
            fun () -> ignore (run_union ph_scheme ~n:3 ~size:16) );
          ("union |S|=64", fun () -> ignore (run_union ph_scheme ~n:3 ~size:64))
        ]
    in
    print_table ~header:[ "protocol run"; "time/run" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings);
    (* ---- fixed_base ablation phase ------------------------------- *)
    subsection
      "fixed_base ablation: generic windowed vs precomputed base table \
       (256-bit, 64 exponents)";
    let rng_fb = Prng.create ~seed:78 in
    let p_fb = Primes.random_prime rng_fb ~bits:256 in
    let g_fb = Prng.bignum_below rng_fb p_fb in
    let exps_fb = List.init 64 (fun _ -> Prng.bits rng_fb 256) in
    (* Warm the table outside the timed region: steady-state reuse (one
       generator signing many digests) is the case the path targets. *)
    ignore (Modular.pow_base ~base:g_fb (List.hd exps_fb) ~m:p_fb);
    let fb_timings =
      time_ns ~quota_s:0.5
        [ ( "generic windowed",
            fun () ->
              List.iter (fun e -> ignore (Modular.pow g_fb e ~m:p_fb)) exps_fb
          );
          ( "fixed-base table",
            fun () ->
              List.iter
                (fun e -> ignore (Modular.pow_base ~base:g_fb e ~m:p_fb))
                exps_fb )
        ]
    in
    let t name = List.assoc name fb_timings in
    let fb_generic = t "generic windowed" and fb_table = t "fixed-base table" in
    ablation_speedups :=
      ("modexp.speedup.fixed_base_vs_generic", fb_generic /. fb_table)
      :: !ablation_speedups;
    print_table ~header:[ "path"; "time/64 modexps"; "vs generic" ]
      [ [ "generic windowed"; pp_ns fb_generic; "1.0x" ];
        [ "fixed-base table"; pp_ns fb_table;
          Printf.sprintf "%.2fx" (fb_generic /. fb_table)
        ]
      ];
    print_endline
      "=> the cached table removes every squaring from the exponentiation\n\
       (one table multiply per nonzero 4-bit digit), so a warmed fixed\n\
       base beats the generic window for each exponent it serves.";
    (* ---- multi_exp ablation phase -------------------------------- *)
    subsection
      "multi_exp ablation: separate exponentiations vs one shared \
       squaring chain (256-bit)";
    let mk_pairs k =
      List.init k (fun _ ->
          (Prng.bignum_below rng_fb p_fb, Prng.bits rng_fb 256))
    in
    let pairs2 = mk_pairs 2 and pairs6 = mk_pairs 6 in
    let sequential ps =
      List.fold_left
        (fun acc (b, e) -> Modular.mul acc (Modular.pow b e ~m:p_fb) ~m:p_fb)
        Bignum.one ps
    in
    let me_timings =
      time_ns ~quota_s:0.5
        [ ("sequential k=2", fun () -> ignore (sequential pairs2));
          ( "simultaneous k=2",
            fun () -> ignore (Modular.multi_pow pairs2 ~m:p_fb) );
          ("sequential k=6", fun () -> ignore (sequential pairs6));
          ( "simultaneous k=6",
            fun () -> ignore (Modular.multi_pow pairs6 ~m:p_fb) )
        ]
    in
    let t name = List.assoc name me_timings in
    let rows =
      List.map
        (fun k ->
          let seq = t (Printf.sprintf "sequential k=%d" k)
          and simul = t (Printf.sprintf "simultaneous k=%d" k) in
          ablation_speedups :=
            ("modexp.speedup.multi_exp_vs_sequential", seq /. simul)
            :: !ablation_speedups;
          [ fi k; pp_ns seq; pp_ns simul;
            Printf.sprintf "%.2fx" (seq /. simul)
          ])
        [ 2; 6 ]
    in
    print_table
      ~header:[ "bases"; "sequential"; "simultaneous"; "speedup" ]
      rows;
    print_endline
      "=> Shamir's trick pays the ~256 squarings once for the whole\n\
       product instead of once per base; k=2 is the Paillier add_scaled\n\
       shape, k=6 a threshold-RSA combine.";
    (* ---- resident_ring ablation phase ---------------------------- *)
    subsection
      "resident_ring ablation: per-hop domain round-trips vs \
       Montgomery-resident chaining (256-bit, 4 layers x 64 elements)";
    let rng_rr = Prng.create ~seed:79 in
    let keys_rr =
      List.init 4 (fun _ -> Crypto.Pohlig_hellman.generate_key rng_rr params)
    in
    let ms_rr =
      List.init 64 (fun i ->
          Crypto.Pohlig_hellman.encode params (Printf.sprintf "ring-%d" i))
    in
    let p_rr = params.Crypto.Pohlig_hellman.p in
    let ctx_rr = Montgomery.create p_rr in
    let blinds_rr = List.init 4 (fun _ -> Prng.bignum_below rng_rr p_rr) in
    let rr_timings =
      time_ns ~quota_s:1.0
        [ ( "re-encrypt: per-hop batch (PR 3)",
            fun () ->
              ignore
                (List.fold_left
                   (fun cts key ->
                     Crypto.Pohlig_hellman.encrypt_many params key cts)
                   ms_rr keys_rr) );
          ( "re-encrypt: resident chain",
            fun () ->
              let rs = Crypto.Pohlig_hellman.enter_many params ms_rr in
              let rs =
                List.fold_left
                  (fun rs key ->
                    Crypto.Pohlig_hellman.encrypt_resident_many params key rs)
                  rs keys_rr
              in
              ignore (List.map Crypto.Pohlig_hellman.view rs) );
          ( "blind: per-hop division mul",
            fun () ->
              ignore
                (List.fold_left
                   (fun ys a ->
                     List.map (fun y -> Modular.mul a y ~m:p_rr) ys)
                   ms_rr blinds_rr) );
          ( "blind: resident chain",
            fun () ->
              let rs = List.map (Montgomery.to_resident ctx_rr) ms_rr in
              let bs = List.map (Montgomery.to_resident ctx_rr) blinds_rr in
              let rs =
                List.fold_left
                  (fun rs a ->
                    List.map (fun r -> Montgomery.mul_resident ctx_rr a r) rs)
                  rs bs
              in
              ignore (List.map (Montgomery.of_resident ctx_rr) rs) )
        ]
    in
    let t name = List.assoc name rr_timings in
    let enc_batch = t "re-encrypt: per-hop batch (PR 3)"
    and enc_res = t "re-encrypt: resident chain"
    and bl_classic = t "blind: per-hop division mul"
    and bl_res = t "blind: resident chain" in
    ablation_speedups :=
      ("modexp.speedup.resident_vs_batch", bl_classic /. bl_res)
      :: ("modexp.speedup.resident_vs_batch", enc_batch /. enc_res)
      :: !ablation_speedups;
    print_table ~header:[ "ring pass"; "time/ring"; "speedup" ]
      [ [ "re-encrypt, per-hop batch (PR 3)"; pp_ns enc_batch; "1.0x" ];
        [ "re-encrypt, resident chain"; pp_ns enc_res;
          Printf.sprintf "%.2fx" (enc_batch /. enc_res)
        ];
        [ "blind, per-hop division mul"; pp_ns bl_classic; "1.0x" ];
        [ "blind, resident chain"; pp_ns bl_res;
          Printf.sprintf "%.2fx" (bl_classic /. bl_res)
        ]
      ];
    print_endline
      "=> the resident chain enters the residue domain once per run and\n\
       refreshes the wire view with a single REDC multiply per hop,\n\
       instead of a full entry + exit round-trip per element per hop;\n\
       wire bytes are identical on both paths.  Re-encryption hops are\n\
       dominated by the ~330 REDC multiplications of the 256-bit power\n\
       itself, so the saving there is a few percent; blinding hops do\n\
       one multiplication each, so replacing the Knuth division with a\n\
       chained REDC multiply is the headline win."
  end;
  (* Deterministic cache + protocol counter workload; everything below
     is seeded and independent of whatever ran before.  All moduli and
     key material are generated up front — primality testing exercises
     Modular.pow under throwaway candidate moduli, which would otherwise
     drown the workload's own cache counters — then the registry and the
     context cache are reset so the emitted counters reflect the
     workload alone. *)
  let rng = Prng.create ~seed:73 in
  let working_set = List.init 4 (fun _ -> Primes.random_prime rng ~bits:128) in
  let base = Prng.bits rng 100 in
  (* Force a >= 64-bit exponent so every call takes the Montgomery
     path. *)
  let e = Bignum.logor (Prng.bits rng 64) (Bignum.shift_left Bignum.one 63) in
  let thrash_set =
    List.init ((Modular.mont_cache_capacity ()) + 2) (fun _ ->
        Primes.random_prime rng ~bits:96)
  in
  let ph_params =
    Crypto.Pohlig_hellman.generate_params (Prng.create ~seed:74) ~bits:128
  in
  let ph_scheme =
    Crypto.Commutative.pohlig_hellman (Prng.create ~seed:75) ph_params
  in
  (* Fixed-base / multi-exp material, generated up front for the same
     reason: dealing RSA moduli runs primality tests through
     Modular.pow, which must not pollute the workload counters. *)
  let acc_params = Crypto.Accumulator.generate (Prng.create ~seed:80) ~bits:128 in
  let thr_params, thr_shares =
    Crypto.Threshold_rsa.deal (Prng.create ~seed:81) ~bits:128 ~k:3 ~parties:5
  in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  Modular.reset_mont_cache ();
  let snap () =
    ( Obs.Metrics.get "crypto.mont.cache_hit",
      Obs.Metrics.get "crypto.mont.cache_miss",
      Obs.Metrics.get "crypto.mont.ctx_create" )
  in
  let delta (h0, m0, c0) (h1, m1, c1) = (h1 - h0, m1 - m0, c1 - c0) in
  subsection "montgomery context cache behavior (deterministic)";
  let s0 = snap () in
  for _ = 1 to 8 do
    List.iter (fun m -> ignore (Modular.pow base e ~m)) working_set
  done;
  let interleaved = delta s0 (snap ()) in
  let s1 = snap () in
  for _ = 1 to 3 do
    List.iter (fun m -> ignore (Modular.pow base e ~m)) thrash_set
  done;
  let thrashed = delta s1 (snap ()) in
  let row name calls (h, m, c) =
    [ name; fi calls; fi h; fi m; fi c ]
  in
  print_table
    ~header:[ "workload"; "modexp calls"; "cache hits"; "misses"; "creates" ]
    [ row
        (Printf.sprintf "4 moduli interleaved (cap %d)"
           (Modular.mont_cache_capacity ()))
        32 interleaved;
      row
        (Printf.sprintf "%d moduli round-robin (cap %d)"
           ((Modular.mont_cache_capacity ()) + 2)
           (Modular.mont_cache_capacity ()))
        (3 * ((Modular.mont_cache_capacity ()) + 2))
        thrashed
    ];
  print_endline
    "=> within capacity, context creations are O(#moduli) not O(#calls);\n\
     a round-robin sweep one past capacity is the LRU worst case and\n\
     misses every time.";
  subsection "protocol counter workload (pohlig-hellman 128-bit, n = 3)";
  let s2 = snap () in
  ignore (run_intersection ph_scheme ~n:3 ~size:8);
  ignore (run_union ph_scheme ~n:3 ~size:8);
  let ph_hits, ph_misses, ph_creates = delta s2 (snap ()) in
  Printf.printf
    "one ∩ₛ + one ∪ₛ run (shared prime): %d cache hits, %d misses, %d \
     context creation(s);\n\
     batch calls look the context up once per list, so lookups are far\n\
     fewer than the %d counted modexps.\n"
    ph_hits ph_misses ph_creates
    (Obs.Metrics.get "crypto.modexp");
  subsection "fixed-base + multi-exp counter workload (deterministic)";
  (* Accumulator and threshold-RSA exercise every new fast path with
     fully seeded inputs: accumulate_all and the witness sweep share one
     x0 base table (hits after the first build), batch verification and
     the threshold combine go through multi_pow.  The deltas below are
     byte-stable and persisted. *)
  let payloads = List.init 12 (fun i -> Printf.sprintf "glsn-%04d" i) in
  let total = Crypto.Accumulator.accumulate_all acc_params payloads in
  let wits = Crypto.Accumulator.witnesses acc_params payloads in
  if
    not
      (Crypto.Accumulator.verify_members
         (Prng.create ~seed:82)
         acc_params ~total wits)
  then failwith "modexp: accumulator witness sweep failed to verify";
  let partials = Crypto.Threshold_rsa.partial_sign_all thr_shares "audit-log" in
  (match Crypto.Threshold_rsa.combine thr_params "audit-log" partials with
  | Ok _ -> ()
  | Error e -> failwith ("modexp: threshold combine failed: " ^ e));
  Printf.printf
    "accumulator(12 payloads) + threshold-RSA(5 shares): %d base-table \
     hit(s), %d create(s), %d multi-exponentiation(s)\n"
    (Obs.Metrics.get "crypto.mont.fixed_base_hit")
    (Obs.Metrics.get "crypto.mont.fixed_base_table_create")
    (Obs.Metrics.get "crypto.mont.multi_pow");
  subsection "experiment counter totals (persisted to BENCH_modexp.json)";
  print_table ~header:[ "counter"; "value" ]
    (List.map
       (fun name -> [ name; fi (Obs.Metrics.get name) ])
       [ "crypto.modexp"; "crypto.commutative.enc"; "crypto.commutative.dec";
         "crypto.mont.cache_hit"; "crypto.mont.cache_miss";
         "crypto.mont.ctx_create"; "crypto.mont.pow";
         "crypto.mont.fixed_base_hit"; "crypto.mont.fixed_base_miss";
         "crypto.mont.fixed_base_table_create"; "crypto.mont.multi_pow";
         "crypto.mont.resident_enter"; "crypto.mont.resident_pow";
         "crypto.mont.resident_resync"; "net.msgs"; "net.rounds"
       ]);
  print_endline
    "=> crypto.modexp (the paper's §3 cost) is unchanged by this PR; the\n\
     op-mix below it shows where those exponentiations actually ran:\n\
     resident_pow replaces generic crypto.mont.pow inside the ring\n\
     passes, and fixed_base/multi_pow absorb the accumulator and\n\
     threshold work.";
  (* Persist the measured speedups as histogram samples: the checked-in
     baseline carries the batch-vs-element-at-a-time evidence, while
     diff_metrics compares counters only (timing varies run to run). *)
  List.iter
    (fun (size, vs_classic, vs_mont) ->
      ignore size;
      Obs.Metrics.observe "modexp.speedup.batch_vs_classic" vs_classic;
      Obs.Metrics.observe "modexp.speedup.batch_vs_montgomery" vs_mont)
    (List.rev !speedups);
  List.iter
    (fun (name, speedup) -> Obs.Metrics.observe name speedup)
    (List.rev !ablation_speedups)

(* ------------------------------------------------------------------ *)
(* P4: integrity-checking cost and detection                           *)
(* ------------------------------------------------------------------ *)

let populated_cluster records =
  let cluster = Cluster.create ~seed:17 Fragmentation.paper_partition in
  let ticket =
    Cluster.issue_ticket cluster ~id:"T" ~principal:(Net.Node_id.User 1)
      ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:86400
  in
  let glsns =
    List.init records (fun i ->
        let attributes =
          [ (Attribute.defined "time", Value.Time (1000 + i));
            (Attribute.defined "id", Value.Str "U1");
            (Attribute.defined "protocl", Value.Str "UDP");
            (Attribute.defined "tid", Value.Str (Printf.sprintf "T%d" i));
            (Attribute.undefined 1, Value.Int i);
            (Attribute.undefined 2, Value.Money (100 * i));
            (Attribute.undefined 3, Value.Str "memo")
          ]
        in
        match
          Cluster.to_result
            (Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
               ~attributes)
        with
        | Ok glsn -> glsn
        | Error e -> failwith e)
  in
  (cluster, glsns)

let exp_cost_integrity () =
  section "P4: distributed integrity checking (§4.1) — cost and detection";
  let rows =
    List.map
      (fun records ->
        let cluster, _ = populated_cluster records in
        Net.Network.reset_stats (Cluster.net cluster);
        let violations =
          Integrity.check_all cluster ~initiator:(Net.Node_id.Dla 0)
        in
        let stats = Net.Network.stats (Cluster.net cluster) in
        [ fi records; fi stats.Net.Network.messages;
          fi stats.Net.Network.bytes; fi (List.length violations)
        ])
      [ 5; 20; 50 ]
  in
  print_table
    ~header:[ "records"; "sweep msgs"; "sweep bytes"; "violations (clean)" ]
    rows;
  subsection "tamper detection";
  let cluster, glsns = populated_cluster 20 in
  let rng = Prng.create ~seed:3 in
  let victims =
    List.filteri (fun i _ -> i < 5) (Smc.Proto_util.shuffle rng glsns)
  in
  List.iter
    (fun glsn ->
      let node = Net.Node_id.Dla (Prng.int rng 4) in
      let store = Cluster.store_of cluster node in
      let attr =
        match
          Attribute.Set.elements (Storage.supported store)
        with
        | a :: _ -> a
        | [] -> assert false
      in
      ignore (Storage.tamper_set store ~glsn ~attr (Value.Int 424242)))
    victims;
  let violations = Integrity.check_all cluster ~initiator:(Net.Node_id.Dla 0) in
  Printf.printf "tampered %d records -> %d violations detected (rate %.0f%%)\n"
    (List.length victims) (List.length violations)
    (100.0
    *. float_of_int (List.length violations)
    /. float_of_int (List.length victims));
  subsection "ablation: ring circulation vs witness spot-check (ref [27])";
  let cluster, glsns = populated_cluster 10 in
  let glsn = List.hd glsns in
  Net.Network.reset_stats (Cluster.net cluster);
  ignore (Integrity.check_record cluster ~initiator:(Net.Node_id.Dla 0) glsn);
  let circulation = (Net.Network.stats (Cluster.net cluster)).Net.Network.messages in
  Net.Network.reset_stats (Cluster.net cluster);
  ignore
    (Integrity.challenge_node cluster ~challenger:(Net.Node_id.Dla 0)
       ~node:(Net.Node_id.Dla 1) glsn);
  let challenge = (Net.Network.stats (Cluster.net cluster)).Net.Network.messages in
  Printf.printf
    "messages per check: circulation %d (whole record), witness challenge %d \
     (one node)\n"
    circulation challenge;
  if not !skip_timing then begin
    let timings =
      time_ns
        [ ( "check_record (ring, 4 nodes)",
            fun () ->
              ignore
                (Integrity.check_record cluster ~initiator:(Net.Node_id.Dla 0)
                   glsn) );
          ( "challenge_node (witness)",
            fun () ->
              ignore
                (Integrity.challenge_node cluster
                   ~challenger:(Net.Node_id.Dla 0) ~node:(Net.Node_id.Dla 1)
                   glsn) )
        ]
    in
    print_table ~header:[ "operation"; "time/run" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings)
  end

(* ------------------------------------------------------------------ *)
(* P5: Shamir threshold sweep                                          *)
(* ------------------------------------------------------------------ *)

let exp_cost_shamir () =
  section "P5: secure sum vs reconstruction threshold k (n = 8)";
  let n = 8 in
  let rows =
    List.map
      (fun k ->
        let net = Net.Network.of_config (Net.Config.make ()) in
        let parties =
          List.init n (fun i ->
              { Smc.Sum.node = Net.Node_id.Dla i; value = Bignum.of_int i })
        in
        let _ =
          Smc.Sum.run ~net ~rng:(Prng.create ~seed:k) ~p:sum_p ~k
            ~receiver:auditor parties
        in
        let stats = Net.Network.stats net in
        [ fi k; fi stats.Net.Network.messages; fi stats.Net.Network.bytes;
          fi (k - 1)
        ])
      [ 1; 2; 4; 6; 8 ]
  in
  print_table
    ~header:[ "k"; "messages"; "bytes"; "max colluders tolerated" ]
    rows;
  print_endline
    "=> message count is dominated by the n^2 dealing phase; raising k\n\
     costs only extra aggregate-share forwards while tolerating k-1\n\
     colluding nodes (the DESIGN.md privacy/cost ablation)."

(* ------------------------------------------------------------------ *)
(* E14: coalition exposure                                             *)
(* ------------------------------------------------------------------ *)

let exp_exposure () =
  section
    "E14: coalition exposure — generalizing 'no single node owns the log'";
  let cluster = Cluster.create ~seed:91 Fragmentation.paper_partition in
  let _ =
    Workload.Ecommerce.populate cluster
      { Workload.Ecommerce.default_config with transactions = 20 }
  in
  let rows =
    List.map
      (fun (size, c) ->
        [ fi size;
          Printf.sprintf "%d / %d" c.Exposure.cells_observed
            c.Exposure.cells_total;
          Printf.sprintf "%.0f%%" (100.0 *. Exposure.fraction c);
          Printf.sprintf "%d / %d" c.Exposure.records_fully_covered
            c.Exposure.records_total
        ])
      (Exposure.sweep cluster)
  in
  print_table
    ~header:
      [ "colluding nodes"; "cells observed"; "coverage"; "records fully held" ]
    rows;
  print_endline
    "=> the §2 guarantee is exactly the first row: one node holds a strict\n\
     subset of columns and zero complete records; only the grand coalition\n\
     reconstructs everything."

(* ------------------------------------------------------------------ *)
(* P9: asynchronous integrity under failures                           *)
(* ------------------------------------------------------------------ *)

let exp_async_integrity () =
  section
    "P9: asynchronous integrity circulation (discrete-event simulation)";
  let cluster, glsns = populated_cluster 5 in
  let glsn = List.hd glsns in
  let show label verdict time =
    Printf.printf "%-28s %-34s %6.1f ms\n" label
      (Async_integrity.verdict_to_string verdict)
      time
  in
  let v, t =
    Async_integrity.check_record cluster ~initiator:(Net.Node_id.Dla 0) glsn
  in
  show "clean ring" v t;
  let store = Cluster.store_of cluster (Net.Node_id.Dla 1) in
  ignore
    (Storage.tamper_set store ~glsn ~attr:(Attribute.undefined 2)
       (Value.Money 1));
  let v, t =
    Async_integrity.check_record cluster ~initiator:(Net.Node_id.Dla 0) glsn
  in
  show "tampered fragment" v t;
  let glsn2 = List.nth glsns 1 in
  let v, t =
    Async_integrity.check_record cluster ~down:[ Net.Node_id.Dla 2 ]
      ~timeout_ms:40.0 ~initiator:(Net.Node_id.Dla 0) glsn2
  in
  show "P2 down (40ms timeout)" v t;
  let v, t =
    Async_integrity.check_record cluster ~latency_ms:5.0
      ~initiator:(Net.Node_id.Dla 0) glsn2
  in
  show "5ms links" v t;
  print_endline
    "=> the async implementation reproduces the synchronous verdicts\n\
     (property-tested) and additionally bounds detection latency: a dead\n\
     node converts into a timeout verdict naming the break point."

(* ------------------------------------------------------------------ *)
(* P6: threshold signatures                                            *)
(* ------------------------------------------------------------------ *)

let exp_cost_threshold () =
  section "P6: (k, n)-threshold RSA — the cluster's signing primitive";
  let rng = Prng.create ~seed:23 in
  let statement = "audit{C1 > 30}->[139aef79,139aef7a,139aef7c]" in
  let rows =
    List.map
      (fun (k, parties) ->
        let params, shares =
          Crypto.Threshold_rsa.deal rng ~bits:128 ~k ~parties
        in
        let partials =
          List.map
            (fun s -> Crypto.Threshold_rsa.partial_sign s statement)
            shares
        in
        let subset = List.filteri (fun i _ -> i < k) partials in
        let ok =
          match Crypto.Threshold_rsa.combine params statement subset with
          | Ok s -> Crypto.Threshold_rsa.verify params statement s
          | Error _ -> false
        in
        let below =
          if k = 1 then "n/a"
          else
            match
              Crypto.Threshold_rsa.combine params statement
                (List.filteri (fun i _ -> i < k - 1) partials)
            with
            | Ok _ -> "SIGNED (bug)"
            | Error _ -> "rejected"
        in
        [ Printf.sprintf "%d-of-%d" k parties;
          (if ok then "verifies" else "FAILED"); below ])
      [ (1, 3); (2, 3); (3, 4); (3, 5); (5, 7) ]
  in
  print_table ~header:[ "scheme"; "k partials"; "k-1 partials" ] rows;
  if not !skip_timing then begin
    let params, shares = Crypto.Threshold_rsa.deal rng ~bits:128 ~k:3 ~parties:5 in
    let partials =
      List.map (fun s -> Crypto.Threshold_rsa.partial_sign s statement) shares
    in
    let subset = List.filteri (fun i _ -> i < 3) partials in
    let timings =
      time_ns
        [ ( "partial_sign",
            fun () ->
              ignore
                (Crypto.Threshold_rsa.partial_sign (List.hd shares) statement) );
          ( "combine (3 partials)",
            fun () ->
              ignore (Crypto.Threshold_rsa.combine params statement subset) );
          ( "verify",
            fun () ->
              match Crypto.Threshold_rsa.combine params statement subset with
              | Ok s -> ignore (Crypto.Threshold_rsa.verify params statement s)
              | Error _ -> () )
        ]
    in
    print_table ~header:[ "operation"; "time/run" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings)
  end

(* ------------------------------------------------------------------ *)
(* P7: distributed majority agreement                                  *)
(* ------------------------------------------------------------------ *)

let exp_cost_majority () =
  section "P7: distributed majority agreement (commit-then-reveal)";
  let rows =
    List.map
      (fun n ->
        let net = Net.Network.of_config (Net.Config.make ()) in
        let votes =
          List.init n (fun i ->
              ( Net.Node_id.Dla i,
                if i mod 3 = 0 then Smc.Majority.Reject else Smc.Majority.Approve
              ))
        in
        let outcome =
          Smc.Majority.run ~net ~rng:(Prng.create ~seed:n) ~votes ()
        in
        let stats = Net.Network.stats net in
        [ fi n;
          (match outcome.Smc.Majority.verdict with
          | Some v -> Smc.Majority.vote_to_string v
          | None -> "tie");
          fi stats.Net.Network.messages; fi stats.Net.Network.bytes;
          fi stats.Net.Network.rounds
        ])
      [ 3; 4; 6; 8; 12 ]
  in
  print_table ~header:[ "n"; "verdict"; "messages"; "bytes"; "rounds" ] rows;
  subsection "equivocation";
  let net = Net.Network.of_config (Net.Config.make ()) in
  let votes =
    List.init 5 (fun i -> (Net.Node_id.Dla i, Smc.Majority.Approve))
  in
  let outcome =
    Smc.Majority.run ~net ~rng:(Prng.create ~seed:1) ~votes
      ~cheaters:[ (Net.Node_id.Dla 2, Smc.Majority.Reject) ]
      ()
  in
  Printf.printf
    "5 honest commits, P2 tries to flip its vote at reveal: flagged = [%s], \
     verdict %s on 4 valid votes\n"
    (String.concat ";"
       (List.map Net.Node_id.to_string outcome.Smc.Majority.flagged))
    (match outcome.Smc.Majority.verdict with
    | Some v -> Smc.Majority.vote_to_string v
    | None -> "tie")

(* ------------------------------------------------------------------ *)
(* P8: secret counting / correlation sweep                             *)
(* ------------------------------------------------------------------ *)

let exp_cost_correlation () =
  section "P8: secret-counting correlation — cost vs windows x subjects";
  let config = Workload.Intrusion.default_config in
  let rows =
    List.map
      (fun (subjects, windows) ->
        let cluster = Cluster.create ~seed:29 Fragmentation.paper_partition in
        let _, truth = Workload.Intrusion.populate cluster config in
        let subject_list =
          truth.Workload.Intrusion.attacker
          :: List.filteri
               (fun i _ -> i < subjects - 1)
               truth.Workload.Intrusion.background_sources
        in
        let span = 86_400 in
        let step = span / windows in
        Net.Network.reset_stats (Cluster.net cluster);
        let alerts =
          match
            Correlation.sliding_window_alerts cluster ~auditor
              ~subject_attr:(Attribute.defined "id") ~subjects:subject_list
              ~from_time:Workload.Time_util.(
                epoch_of_civil ~year:2002 ~month:5 ~day:13 ~hour:0 ~minute:0
                  ~second:0)
              ~to_time:
                (Workload.Time_util.epoch_of_civil ~year:2002 ~month:5 ~day:14
                   ~hour:0 ~minute:0 ~second:0)
              ~window_seconds:step ~step_seconds:step
              ~threshold:config.Workload.Intrusion.probes_per_host ()
          with
          | Ok alerts -> alerts
          | Error e -> failwith e
        in
        let stats = Net.Network.stats (Cluster.net cluster) in
        [ fi (List.length subject_list); fi windows;
          fi stats.Net.Network.messages; fi (List.length alerts)
        ])
      [ (2, 1); (4, 4); (8, 8) ]
  in
  print_table ~header:[ "subjects"; "windows"; "messages"; "alerts" ] rows;
  print_endline
    "=> each (subject, window) cell costs one secret-count audit; the\n\
     auditor accumulates counts only, never glsn sets or rows."

(* ------------------------------------------------------------------ *)
(* P11: classical vs relaxed comparison                                *)
(* ------------------------------------------------------------------ *)

let exp_millionaire () =
  section
    "P11: one private comparison — Yao's millionaire protocol (ref [10])\n\
     vs the relaxed blinded-TTP comparison (§3.3)";
  let rows =
    List.map
      (fun domain ->
        let net = Net.Network.of_config (Net.Config.make ()) in
        let _ =
          Smc.Millionaire.run ~net ~rng:(Prng.create ~seed:domain) ~bits:128
            ~domain
            ~alice:(Net.Node_id.Dla 0, (domain / 2) + 1)
            ~bob:(Net.Node_id.Dla 1, domain / 2)
            ()
        in
        let stats = Net.Network.stats net in
        [ Printf.sprintf "millionaire N=%d" domain;
          fi stats.Net.Network.messages; fi stats.Net.Network.bytes ])
      [ 8; 32; 128 ]
  in
  let ttp_row =
    let net = Net.Network.of_config (Net.Config.make ()) in
    let _ =
      Smc.Ranking.comparisons ~net ~rng:(Prng.create ~seed:1)
        ~ttp:(Net.Node_id.Ttp "cmp")
        ~left:(Net.Node_id.Dla 0, Bignum.of_int 17)
        ~right:(Net.Node_id.Dla 1, Bignum.of_int 9)
    in
    let stats = Net.Network.stats net in
    [ "blinded TTP (any domain)"; fi stats.Net.Network.messages;
      fi stats.Net.Network.bytes ]
  in
  print_table ~header:[ "protocol"; "messages"; "bytes" ] (rows @ [ ttp_row ]);
  if not !skip_timing then begin
    let timings =
      time_ns
        [ ( "millionaire N=32",
            fun () ->
              let net = Net.Network.of_config (Net.Config.make ()) in
              ignore
                (Smc.Millionaire.run ~net ~rng:(Prng.create ~seed:7) ~bits:128
                   ~domain:32
                   ~alice:(Net.Node_id.Dla 0, 20)
                   ~bob:(Net.Node_id.Dla 1, 9)
                   ()) );
          ( "blinded TTP",
            fun () ->
              let net = Net.Network.of_config (Net.Config.make ()) in
              ignore
                (Smc.Ranking.comparisons ~net ~rng:(Prng.create ~seed:8)
                   ~ttp:(Net.Node_id.Ttp "cmp")
                   ~left:(Net.Node_id.Dla 0, Bignum.of_int 20)
                   ~right:(Net.Node_id.Dla 1, Bignum.of_int 9)) )
        ]
    in
    print_table ~header:[ "protocol"; "time/comparison" ]
      (List.map (fun (n, ns) -> [ n; pp_ns ns ]) timings)
  end;
  print_endline
    "=> the 1982 protocol pays O(N) trapdoor decryptions and O(N) wire\n\
     bytes per comparison (and needs a public wealth domain); the relaxed\n\
     model's blinded comparison is constant-cost — the paper's case for\n\
     Definition 1 in one table."

(* ------------------------------------------------------------------ *)
(* E15: layout search                                                  *)
(* ------------------------------------------------------------------ *)

let exp_layout_search () =
  section "E15: fragmentation-layout search under the eq-13 objective";
  let attrs =
    Attribute.[ defined "time"; defined "id"; defined "protocl";
                defined "tid"; undefined 1; undefined 2; undefined 3 ]
  in
  let records =
    List.map
      (fun pairs ->
        Log_record.make ~glsn:(Glsn.of_string "1")
          ~origin:(Net.Node_id.User 0) ~attributes:pairs)
      Workload.Paper_example.rows
  in
  let queries =
    List.map q
      [ {|C1 > 30|}; {|id = "U1" && C2 > 100.00|}; {|C2 = C3|};
        {|time >= 0 && id != tid|}; {|protocl = "UDP" && C1 < 40|} ]
  in
  let eval name layout =
    [ name;
      ff (Layout_search.score layout ~queries ~records);
      Fragmentation.to_spec layout ]
  in
  let greedy_layout, _ = Layout_search.greedy ~nodes:4 ~attrs ~queries ~records in
  let anneal_layout, _ =
    Layout_search.anneal ~rng:(Prng.create ~seed:97) ~iterations:400 ~nodes:4
      ~attrs ~queries ~records
  in
  print_table ~header:[ "layout"; "C_DLA"; "assignment" ]
    [ eval "all at one node (worst)"
        (Fragmentation.make
           [ (Net.Node_id.Dla 0, attrs); (Net.Node_id.Dla 1, []);
             (Net.Node_id.Dla 2, []); (Net.Node_id.Dla 3, []) ]);
      eval "two nodes"
        (Fragmentation.grouped ~nodes:(Net.Node_id.dla_ring 4) ~attrs
           ~per_node:4);
      eval "paper partition" Fragmentation.paper_partition;
      eval "round robin"
        (Fragmentation.round_robin ~nodes:(Net.Node_id.dla_ring 4) ~attrs);
      eval "greedy search" greedy_layout;
      eval "simulated annealing" anneal_layout
    ];
  print_endline
    "=> eq 13 as a design objective: concentrating attributes collapses\n\
     the score (u and the cross fraction both drop); the searchers\n\
     confirm spread-out layouts — including the paper's — sit at the\n\
     workload's optimum."

(* ------------------------------------------------------------------ *)
(* P10: homed vs shared column                                         *)
(* ------------------------------------------------------------------ *)

let exp_shared_column () =
  section
    "P10: column storage ablation — homed (one node sees all values) vs\n\
     Shamir-shared (no node sees any value)";
  let records = 20 in
  (* Homed: amounts live at their home node as usual. *)
  let homed_cluster = Cluster.create ~seed:95 Fragmentation.paper_partition in
  let _, _ =
    Workload.Ecommerce.populate homed_cluster
      { Workload.Ecommerce.default_config with transactions = records / 2 }
  in
  let homed_exposure =
    let ledger = Net.Network.ledger (Cluster.net homed_cluster) in
    let store = Cluster.store_of homed_cluster (Net.Node_id.Dla 1) in
    List.length
      (List.filter
         (fun (_, v) ->
           Net.Ledger.saw_plaintext ledger ~node:(Net.Node_id.Dla 1)
             (Printf.sprintf "C2=%s" (Value.to_string v)))
         (Storage.column store (Attribute.undefined 2)))
  in
  Net.Network.reset_stats (Cluster.net homed_cluster);
  let _ =
    Auditor_engine.secret_sum homed_cluster ~auditor
      ~attr:(Attribute.undefined 2) {|C1 >= 0|}
  in
  let homed_stats = Net.Network.stats (Cluster.net homed_cluster) in
  (* Shared: a parallel column dealt as (3, 4) shares. *)
  let shared_cluster = Cluster.create ~seed:96 Fragmentation.paper_partition in
  let glsns, _ =
    Workload.Ecommerce.populate shared_cluster
      { Workload.Ecommerce.default_config with transactions = records / 2 }
  in
  let column =
    Shared_column.create shared_cluster ~attr:(Attribute.undefined 9) ~k:3
  in
  Net.Network.reset_stats (Cluster.net shared_cluster);
  List.iteri
    (fun i glsn -> Shared_column.record column ~glsn (Value.Money (100 + i)))
    glsns;
  let deal_stats = Net.Network.stats (Cluster.net shared_cluster) in
  Net.Network.reset_stats (Cluster.net shared_cluster);
  let _ = Shared_column.secret_total column ~auditor () in
  let total_stats = Net.Network.stats (Cluster.net shared_cluster) in
  print_table
    ~header:[ "mode"; "values a single node sees"; "store msgs"; "sum msgs" ]
    [ [ "homed (C2 at P1)"; fi homed_exposure; "0 (inline with submit)";
        fi homed_stats.Net.Network.messages ];
      [ "shamir-shared (k=3, n=4)"; "0"; fi deal_stats.Net.Network.messages;
        fi total_stats.Net.Network.messages ]
    ];
  print_endline
    "=> sharing removes the home node's full-column view entirely at the\n\
     cost of n share messages per value and the loss of per-record\n\
     predicates on that column (DESIGN.md ablation)."

(* ------------------------------------------------------------------ *)
(* P12: availability and latency under faults                          *)
(* ------------------------------------------------------------------ *)

let exp_availability () =
  section
    "P12: audit availability and virtual-time latency under faults\n\
     (retry/backoff logging path, hinted handoff, degraded execution)";
  let mk_row i =
    [ (Attribute.defined "time", Value.Time (1000 + i));
      (Attribute.defined "id", Value.Str (if i mod 3 = 0 then "U2" else "U1"));
      (Attribute.defined "protocl", Value.Str "UDP");
      (Attribute.defined "tid", Value.Str (Printf.sprintf "T%d" i));
      (Attribute.undefined 1, Value.Int i);
      (Attribute.undefined 2, Value.Money (100 * i));
      (Attribute.undefined 3, Value.Str "memo")
    ]
  in
  let records = 30 in
  let criteria = {|id = "U1" && C1 >= 0|} in
  let percentile sorted p =
    match sorted with
    | [] -> 0.0
    | _ ->
      let n = List.length sorted in
      let idx =
        int_of_float (Float.round (p *. float_of_int (n - 1)))
      in
      List.nth sorted idx
  in
  (* Fault-free reference answer (same submissions, clean network). *)
  let reference =
    let cluster = Cluster.create ~seed:33 Fragmentation.paper_partition in
    let ticket =
      Cluster.issue_ticket cluster ~id:"T" ~principal:(Net.Node_id.User 1)
        ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:86400
    in
    for i = 0 to records - 1 do
      ignore
        (Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
           ~attributes:(mk_row i))
    done;
    match Auditor_engine.run cluster ~auditor (Auditor_engine.Text criteria) with
    | Ok audit -> List.map Glsn.to_string audit.Auditor_engine.matching
    | Error e -> failwith (Audit_error.to_string e)
  in

  subsection "logging path vs message loss (bounded retries, 30 submits)";
  let loss_rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ] in
  let clusters_by_loss =
    List.map
      (fun loss ->
        let net = Net.Network.of_config (Net.Config.make ~seed:33 ~loss_rate:loss ()) in
        let cluster = Cluster.create ~seed:33 ~net Fragmentation.paper_partition in
        let ticket =
          Cluster.issue_ticket cluster ~id:"T" ~principal:(Net.Node_id.User 1)
            ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:86400
        in
        let committed = ref 0 and degraded = ref 0 and rejected = ref 0 in
        let latencies =
          List.init records (fun i ->
              let before = Net.Network.virtual_time_ms net in
              (match
                 Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
                   ~attributes:(mk_row i)
               with
              | Cluster.Committed _ -> incr committed
              | Cluster.Committed_degraded _ -> incr degraded
              | Cluster.Rejected _ -> incr rejected);
              Net.Network.virtual_time_ms net -. before)
        in
        (* Drain to quiescence: under loss a drain send can itself fail
           and re-park, so keep going (aging the breakers) until no hint
           is left or the attempt budget runs out. *)
        let rec drain_all n =
          if n > 0 && Cluster.pending_hints cluster <> [] then begin
            ignore (Cluster.drain_hints cluster);
            Net.Retry.tick (Cluster.retry cluster) 200.0;
            drain_all (n - 1)
          end
        in
        drain_all 20;
        let sorted = List.sort compare latencies in
        let stats = Net.Network.stats (Cluster.net cluster) in
        ( loss,
          cluster,
          [ Printf.sprintf "%.0f%%" (100.0 *. loss);
            Printf.sprintf "%d/%d/%d" !committed !degraded !rejected;
            ff (percentile sorted 0.5); ff (percentile sorted 0.99);
            fi stats.Net.Network.dropped
          ] ))
      loss_rates
  in
  print_table
    ~header:
      [ "loss"; "committed/degraded/rejected"; "p50 ms"; "p99 ms"; "drops" ]
    (List.map (fun (_, _, row) -> row) clusters_by_loss);
  print_endline
    "=> the retry layer holds submit availability at 100% across the\n\
     sweep; loss shows up as virtual-time latency (backoff) instead.";

  subsection "audit path vs message loss (20 audits per rate)";
  let audit_rows =
    List.map
      (fun (loss, cluster, _) ->
        let attempts = 20 in
        let completed = ref 0 and exact = ref 0 in
        for _ = 1 to attempts do
          match
            Auditor_engine.run cluster ~auditor (Auditor_engine.Text criteria)
          with
          | Ok audit ->
            incr completed;
            if
              List.map Glsn.to_string audit.Auditor_engine.matching
              = reference
            then incr exact
          | Error _ -> ()
          | exception Net.Network.Partitioned _ -> ()
        done;
        [ Printf.sprintf "%.0f%%" (100.0 *. loss);
          Printf.sprintf "%d/%d" !completed attempts;
          (if !completed = 0 then "n/a"
           else if !exact = !completed then "yes"
           else Printf.sprintf "%d/%d" !exact !completed)
        ])
      clusters_by_loss
  in
  print_table ~header:[ "loss"; "audits completed"; "answers exact" ]
    audit_rows;
  print_endline
    "=> the unprotected audit path (send_exn, no retries) is what loss\n\
     actually breaks — completed audits stay exact, the rest abort.";

  subsection "crashed DLA nodes (10 clean + 20 faulted submits, then recovery)";
  let crash_rows =
    List.map
      (fun crashed ->
        let cluster = Cluster.create ~seed:44 Fragmentation.paper_partition in
        let net = Cluster.net cluster in
        let ticket =
          Cluster.issue_ticket cluster ~id:"T" ~principal:(Net.Node_id.User 1)
            ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:86400
        in
        let down = List.init crashed (fun k -> Net.Node_id.Dla (k + 1)) in
        let committed = ref 0 and degraded = ref 0 and rejected = ref 0 in
        for i = 0 to 9 do
          ignore
            (Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
               ~attributes:(mk_row i))
        done;
        List.iter (Net.Network.take_down net) down;
        for i = 10 to records - 1 do
          match
            Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
              ~attributes:(mk_row i)
          with
          | Cluster.Committed _ -> incr committed
          | Cluster.Committed_degraded _ -> incr degraded
          | Cluster.Rejected _ -> incr rejected
        done;
        let parked = List.length (Cluster.pending_hints cluster) in
        (* Mid-fault, the degraded executor still answers with explicit
           coverage. *)
        let covered =
          match
            Executor.run cluster ~on_failure:Executor.Degrade
              ~auditor (q criteria)
          with
          | Ok report ->
            Printf.sprintf "%d/%d"
              report.Executor.coverage.Executor.evaluated_clauses
              report.Executor.coverage.Executor.total_clauses
          | Error _ -> "error"
        in
        List.iter
          (fun node ->
            Net.Network.bring_up net node;
            Net.Retry.reinstate (Cluster.retry cluster) node)
          down;
        let drained = List.length (Cluster.drain_hints cluster) in
        let exact =
          match
            Auditor_engine.run cluster ~auditor (Auditor_engine.Text criteria)
          with
          | Ok audit ->
            if
              List.map Glsn.to_string audit.Auditor_engine.matching
              = reference
            then "yes"
            else "NO"
          | Error e -> Audit_error.to_string e
        in
        [ fi crashed;
          Printf.sprintf "%d/%d/%d" !committed !degraded !rejected;
          fi parked; covered; fi drained; exact
        ])
      [ 0; 1; 2 ]
  in
  print_table
    ~header:
      [ "crashed"; "committed/degraded/rejected"; "hints parked";
        "clauses mid-fault"; "drained"; "audit exact after recovery"
      ]
    crash_rows;
  print_endline
    "=> crash-safe submit never rejects while any successor survives:\n\
     fragments park on the ring, drain on recovery, and the post-repair\n\
     audit answer is byte-identical to the fault-free run."

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* P14: batched audit sessions                                         *)
(* ------------------------------------------------------------------ *)

let exp_audit_batch () =
  section
    "P14: batched audit sessions — shared-predicate planning, glsn-set \
     caching (eq 11 amortization)";
  (* K = 6 criteria over the paper cluster with well over 50% shared
     atoms: every predicate below appears in at least two queries.  This
     is the regime the session engine targets — an auditor sweeping one
     log window with a family of related criteria. *)
  let criteria =
    [ {|C1 > 30|};
      {|C1 > 30 && C2 = C3|};
      {|protocl = "UDP"|};
      {|protocl = "UDP" && C2 = C3|};
      {|C2 = C3 && time >= 0|};
      {|time >= 0 && protocl = "UDP"|};
      {|id != tid && C2 = C3|};
      {|id != tid && C1 > 30|}
    ]
  in
  let auditor = Net.Node_id.Auditor in
  (* Material first: twin identically-seeded clusters, so submission
     traffic never pollutes the emitted counters and both paths audit
     byte-identical stores. *)
  let sequential_cluster, _ = Workload.Paper_example.build ~seed:91 () in
  let batched_cluster, _ = Workload.Paper_example.build ~seed:91 () in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  let seq_matching, (seq_msgs, seq_bytes, seq_rounds) =
    List.fold_left
      (fun (matching, (msgs, bytes, rounds)) s ->
        match
          Auditor_engine.run sequential_cluster ~auditor
            (Auditor_engine.Text s)
        with
        | Ok audit ->
          ( matching
            @ [ List.map Glsn.to_string audit.Auditor_engine.matching ],
            ( msgs + audit.Auditor_engine.messages,
              bytes + audit.Auditor_engine.bytes,
              rounds + audit.Auditor_engine.rounds ) )
        | Error e -> failwith (Audit_error.to_string e))
      ([], (0, 0, 0))
      criteria
  in
  let summary =
    match Audit_session.run_strings batched_cluster ~auditor criteria with
    | Ok summary -> summary
    | Error e -> failwith (Audit_error.to_string e)
  in
  let bat_matching =
    List.map
      (fun e -> List.map Glsn.to_string e.Audit_session.matching)
      summary.Audit_session.entries
  in
  if seq_matching <> bat_matching then
    failwith "audit_batch: batched results diverge from sequential";
  subsection
    (Printf.sprintf "%d criteria, %d unique clauses (%d deduplicated)"
       (List.length criteria) summary.Audit_session.unique_clauses
       summary.Audit_session.dedup_clauses);
  print_table
    ~header:[ "path"; "messages"; "bytes"; "rounds" ]
    [ [ Printf.sprintf "sequential (%d audits)" (List.length criteria);
        fi seq_msgs; fi seq_bytes; fi seq_rounds
      ];
      [ "batched session"; fi summary.Audit_session.messages;
        fi summary.Audit_session.bytes; fi summary.Audit_session.rounds
      ]
    ];
  Printf.printf
    "dedup: %d/%d atom and %d/%d clause occurrences eliminated; %d glsn-set \
     cache hit(s)\n"
    summary.Audit_session.dedup_atoms
    (summary.Audit_session.dedup_atoms + summary.Audit_session.unique_atoms)
    summary.Audit_session.dedup_clauses
    (summary.Audit_session.dedup_clauses
    + summary.Audit_session.unique_clauses)
    summary.Audit_session.cache_hits;
  if
    summary.Audit_session.messages >= seq_msgs
    || summary.Audit_session.rounds >= seq_rounds
  then failwith "audit_batch: batching failed to reduce messages/rounds";
  print_endline
    "=> identical glsn sets, one SMC evaluation per distinct clause: the\n\
     batch pays the blinded comparisons and local-result transfers once\n\
     and re-pays only ∩ₛ conjunction and delivery per query.";
  (* Persist the comparison as explicit counters: the checked-in
     baseline locks the sequential-vs-batched gap (diff_metrics compares
     counters byte-for-byte; everything above is seeded). *)
  List.iter
    (fun (name, v) -> Obs.Metrics.incr ~by:v name)
    [ ("audit_batch.sequential.messages", seq_msgs);
      ("audit_batch.sequential.bytes", seq_bytes);
      ("audit_batch.sequential.rounds", seq_rounds);
      ("audit_batch.batched.messages", summary.Audit_session.messages);
      ("audit_batch.batched.bytes", summary.Audit_session.bytes);
      ("audit_batch.batched.rounds", summary.Audit_session.rounds);
      ("audit_batch.criteria", List.length criteria)
    ]

(* ------------------------------------------------------------------ *)
(* P15: Byzantine-tolerant audit rounds                                *)
(* ------------------------------------------------------------------ *)

(* Size the Montgomery-context LRU to an experiment's live moduli: twin
   clusters audited in lockstep interleave several key materials (per
   cluster roughly PH p, Paillier n²/p²/q², threshold n, accumulator n),
   which thrashes the default capacity.  Restores the previous capacity
   on exit so later experiments see the default again. *)
let with_mont_capacity live_moduli f =
  let prev = Modular.mont_cache_capacity () in
  Modular.set_mont_cache_capacity (max prev live_moduli);
  Fun.protect ~finally:(fun () -> Modular.set_mont_cache_capacity prev) f

let exp_byzantine () =
  (* three same-seed clusters (clean / verified / attacked) live at
     once: 3 clusters x ~6 odd moduli each *)
  with_mont_capacity (3 * 6) @@ fun () ->
  section
    "P15: Byzantine-tolerant audit rounds — commitment-verification \
     overhead and quarantine-and-retry recovery";
  (* id homes at P1 and time at P0, so the conjunction rides the
     set-intersection ring — the pass the adversary attacks. *)
  let criteria = q {|id = "U1" && time >= 0|} in
  let clean_cluster, _ = Workload.Paper_example.build ~seed:77 () in
  let verified_cluster, _ = Workload.Paper_example.build ~seed:77 () in
  let attacked_cluster, _ = Workload.Paper_example.build ~seed:77 () in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  (* Clean path: no guard, no adversary — the §3 reference counters. *)
  Net.Network.reset_stats (Cluster.net clean_cluster);
  let clean =
    match Executor.run clean_cluster ~auditor criteria with
    | Ok r -> r
    | Error e -> failwith (Audit_error.to_string e)
  in
  let clean_stats = Net.Network.stats (Cluster.net clean_cluster) in
  (* Honest run under the round guard: byte-identical verdict and
     unchanged protocol counters — the commitment exchange is accounted
     separately, never through Network.send. *)
  Net.Network.reset_stats (Cluster.net verified_cluster);
  let guard = Smc.Round_guard.create () in
  let verified =
    Smc.Round_guard.with_guard guard (fun () ->
        match Executor.run verified_cluster ~auditor criteria with
        | Ok r -> r
        | Error e -> failwith (Audit_error.to_string e))
  in
  let verified_stats = Net.Network.stats (Cluster.net verified_cluster) in
  let honest_vmsgs, honest_vbytes = Smc.Round_guard.verify_cost guard in
  if clean.Executor.matching <> verified.Executor.matching then
    failwith "byzantine: guarded verdict diverges from the clean answer";
  if clean_stats <> verified_stats then
    failwith "byzantine: the guard changed the protocol's wire counters";
  if Smc.Round_guard.accusations guard <> [] then
    failwith "byzantine: the honest run accused someone";
  (* Adversarial path: P1 corrupts its relay pass; the verified driver
     detects, quarantines, re-runs, and converges to the clean verdict. *)
  Net.Network.reset_stats (Cluster.net attacked_cluster);
  let adv =
    Net.Adversary.create ~seed:7
      [ Net.Adversary.plan
          ~labels:[ "intersection:relay" ]
          (Net.Node_id.Dla 1) Net.Adversary.Corrupt
      ]
  in
  let outcome =
    match
      Net.Adversary.with_active adv (fun () ->
          Byzantine.audit attacked_cluster ~auditor criteria)
    with
    | Ok o -> o
    | Error e -> failwith (Audit_error.to_string e)
  in
  let attacked_stats = Net.Network.stats (Cluster.net attacked_cluster) in
  if outcome.Byzantine.report.Executor.matching <> clean.Executor.matching
  then failwith "byzantine: recovered verdict diverges from the clean answer";
  if Net.Adversary.injections adv = [] then
    failwith "byzantine: the adversary never actually lied";
  subsection
    (Printf.sprintf "criteria %s over the paper cluster" {|id = "U1" && time >= 0|});
  print_table
    ~header:[ "path"; "messages"; "bytes"; "rounds"; "verify msgs";
              "verify bytes"; "attempts" ]
    [ [ "clean (no guard)"; fi clean_stats.Net.Network.messages;
        fi clean_stats.Net.Network.bytes; fi clean_stats.Net.Network.rounds;
        "0"; "0"; "1"
      ];
      [ "verified honest"; fi verified_stats.Net.Network.messages;
        fi verified_stats.Net.Network.bytes;
        fi verified_stats.Net.Network.rounds; fi honest_vmsgs;
        fi honest_vbytes; "1"
      ];
      [ "attacked + recovery"; fi attacked_stats.Net.Network.messages;
        fi attacked_stats.Net.Network.bytes;
        fi attacked_stats.Net.Network.rounds; fi outcome.Byzantine.verify_msgs;
        fi outcome.Byzantine.verify_bytes; fi outcome.Byzantine.attempts
      ]
    ];
  Printf.printf
    "recovery: %d attempt(s), quarantined [%s], %d detection event(s)\n"
    outcome.Byzantine.attempts
    (String.concat "; "
       (List.map Net.Node_id.to_string outcome.Byzantine.quarantined))
    (List.length outcome.Byzantine.events);
  print_endline
    "=> the guard is free on the wire (identical §3 counters; commitment\n\
    \   digests ride a separate verification channel) and the attacked\n\
    \   round converges to the byte-identical clean verdict after one\n\
    \   quarantine-and-retry.";
  (* Persist the comparison as explicit counters: everything above is
     seeded, so the checked-in baseline locks the verification overhead
     and the recovery shape byte-for-byte (diff_metrics at threshold 0). *)
  List.iter
    (fun (name, v) -> Obs.Metrics.incr ~by:v name)
    [ ("byzantine.clean.messages", clean_stats.Net.Network.messages);
      ("byzantine.clean.bytes", clean_stats.Net.Network.bytes);
      ("byzantine.clean.rounds", clean_stats.Net.Network.rounds);
      ("byzantine.verified.messages", verified_stats.Net.Network.messages);
      ("byzantine.verified.verify_msgs", honest_vmsgs);
      ("byzantine.verified.verify_bytes", honest_vbytes);
      ("byzantine.attacked.messages", attacked_stats.Net.Network.messages);
      ("byzantine.attacked.bytes", attacked_stats.Net.Network.bytes);
      ("byzantine.attacked.rounds", attacked_stats.Net.Network.rounds);
      ("byzantine.recovery.attempts", outcome.Byzantine.attempts);
      ( "byzantine.recovery.quarantined",
        List.length outcome.Byzantine.quarantined );
      ("byzantine.recovery.verify_msgs", outcome.Byzantine.verify_msgs);
      ("byzantine.recovery.verify_bytes", outcome.Byzantine.verify_bytes)
    ]

(* ------------------------------------------------------------------ *)
(* P16: streaming continuous audits                                    *)
(* ------------------------------------------------------------------ *)

let exp_continuous () =
  (* twin clusters (incremental / from-scratch oracle) re-audited after
     every commit: 2 clusters x ~6 odd moduli each *)
  with_mont_capacity (2 * 6) @@ fun () ->
  section
    "P16: streaming continuous audits — per-commit delta maintenance vs \
     re-auditing from scratch, plus the tamper-evident checkpoint chain";
  let criteria =
    [ ("local-conj", Executor.Glsns, {|id = "U1" && time >= 0|});
      ("count-only", Executor.Count_only, {|protocl = "UDP"|});
      ("cross", Executor.Glsns, {|C2 = C3|})
    ]
  in
  (* Twin clusters, same seed: one carries the standing criteria
     incrementally, the other is re-audited from scratch after every
     commit.  Identical placements, so the wire comparison is the audit
     maintenance cost alone. *)
  let inc_cluster, _ = Workload.Paper_example.build ~seed:91 () in
  let scratch_cluster, _ = Workload.Paper_example.build ~seed:91 () in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  let registry = Continuous.Registry.create inc_cluster in
  let engine = Continuous.Incremental.create ~checkpoint_interval:4 registry in
  let standing =
    List.map
      (fun (name, delivery, text) ->
        match
          Continuous.Incremental.register engine ~delivery
            (Auditor_engine.Text text)
        with
        | Ok sid -> (name, delivery, q text, sid)
        | Error e -> failwith (Audit_error.to_string e))
      criteria
  in
  let mk_ticket cluster =
    Cluster.issue_ticket cluster ~id:"CB" ~principal:(Net.Node_id.User 5)
      ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:36000
  in
  let inc_ticket = mk_ticket inc_cluster in
  let scratch_ticket = mk_ticket scratch_cluster in
  let row i =
    let d = Attribute.defined and u = Attribute.undefined in
    [ (d "time", Value.Time (1021234800 + (i * 37)));
      (d "id", Value.Str (Printf.sprintf "U%d" (1 + (i mod 3))));
      (d "protocl", Value.Str (if i mod 2 = 0 then "UDP" else "TCP"));
      (d "tid", Value.Str "T1100265");
      (u 1, Value.Int (i * 7 mod 60));
      (u 2, Value.Money (1000 + (i * 313)));
      (u 3, Value.Str "signature")
    ]
  in
  let submit cluster ticket r =
    match
      Cluster.to_result
        (Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 5)
           ~attributes:r)
    with
    | Ok glsn -> glsn
    | Error e -> failwith e
  in
  let inc_net = Cluster.net inc_cluster in
  let scratch_net = Cluster.net scratch_cluster in
  Net.Network.reset_stats inc_net;
  Net.Network.reset_stats scratch_net;
  let n_commits = 12 in
  for i = 0 to n_commits - 1 do
    let r = row i in
    ignore (submit inc_cluster inc_ticket r);
    ignore (submit scratch_cluster scratch_ticket r);
    (* from-scratch oracle after every commit; the standing verdicts
       must match byte for byte *)
    List.iter
      (fun (name, delivery, query, sid) ->
        let oracle =
          match
            Auditor_engine.run scratch_cluster ~delivery ~auditor
              (Auditor_engine.Criteria query)
          with
          | Ok a -> a
          | Error e -> failwith (Audit_error.to_string e)
        in
        match Continuous.Incremental.verdict engine sid with
        | None -> failwith (Printf.sprintf "continuous: %s lost its verdict" name)
        | Some v ->
          if
            v.Continuous.Incremental.count <> oracle.Auditor_engine.count
            || List.map Glsn.to_string v.Continuous.Incremental.matching
               <> List.map Glsn.to_string oracle.Auditor_engine.matching
          then
            failwith
              (Printf.sprintf
                 "continuous: %s diverged from the from-scratch answer at \
                  commit %d"
                 name (i + 1)))
      standing
  done;
  let inc_stats = Net.Network.stats inc_net in
  let scratch_stats = Net.Network.stats scratch_net in
  subsection
    (Printf.sprintf "%d streamed commits, %d standing criteria" n_commits
       (List.length standing));
  print_table
    ~header:[ "path"; "messages"; "bytes"; "rounds" ]
    [ [ "incremental (placements + deltas + checkpoints)";
        fi inc_stats.Net.Network.messages; fi inc_stats.Net.Network.bytes;
        fi inc_stats.Net.Network.rounds
      ];
      [ "from-scratch (placements + 3 audits per commit)";
        fi scratch_stats.Net.Network.messages;
        fi scratch_stats.Net.Network.bytes;
        fi scratch_stats.Net.Network.rounds
      ]
    ];
  Printf.printf
    "delta breakdown: %d insert, %d re-blind, %d rebuild; %d verdict \
     changes, %d coverage changes\n"
    (Obs.Metrics.get "audit.delta.insert")
    (Obs.Metrics.get "audit.delta.reblind")
    (Obs.Metrics.get "audit.delta.rebuild")
    (Obs.Metrics.get "audit.delta.verdict_changed")
    (Obs.Metrics.get "audit.delta.coverage_changed");
  (* The chain cut along the way replays, and a truncated copy is
     caught by the anchored verifier with a typed reason. *)
  let chain = Continuous.Incremental.chain engine in
  let cps = Continuous.Checkpoint.checkpoints chain in
  let anchor =
    match Continuous.Checkpoint.head chain with
    | Some h -> h
    | None -> failwith "continuous: no checkpoint was cut"
  in
  (match Continuous.Checkpoint.verify_chain ~head:anchor cps with
  | Ok () -> ()
  | Error t ->
    failwith
      (Printf.sprintf "continuous: honest chain rejected: %s"
         (Continuous.Checkpoint.tamper_to_string t)));
  let truncated = List.filteri (fun i _ -> i < List.length cps - 1) cps in
  let truncation_verdict =
    match Continuous.Checkpoint.verify_chain ~head:anchor truncated with
    | Ok () -> failwith "continuous: truncation went undetected"
    | Error t -> Continuous.Checkpoint.tamper_to_string t
  in
  Printf.printf
    "checkpoint chain: %d checkpoints over %d commits; honest replay OK;\n\
     truncated copy rejected (%s)\n"
    (List.length cps) n_commits truncation_verdict;
  print_endline
    "=> standing criteria track the from-scratch answers byte-for-byte\n\
    \   while the wire cost per commit stays a fraction of re-auditing,\n\
    \   and the hash-linked checkpoints make the audit trail itself\n\
    \   tamper-evident.";
  List.iter
    (fun (name, v) -> Obs.Metrics.incr ~by:v name)
    [ ("continuous.stream.commits", n_commits);
      ("continuous.stream.criteria", List.length standing);
      ("continuous.incremental.messages", inc_stats.Net.Network.messages);
      ("continuous.incremental.bytes", inc_stats.Net.Network.bytes);
      ("continuous.incremental.rounds", inc_stats.Net.Network.rounds);
      ("continuous.scratch.messages", scratch_stats.Net.Network.messages);
      ("continuous.scratch.bytes", scratch_stats.Net.Network.bytes);
      ("continuous.scratch.rounds", scratch_stats.Net.Network.rounds);
      ("continuous.chain.checkpoints", List.length cps)
    ]

(* ------------------------------------------------------------------ *)
(* P17: sharded scale ladder                                           *)
(* ------------------------------------------------------------------ *)

(* Deterministic synthetic population: user u submits exactly one
   record; ~2/3 are UDP and C1 cycles 0..99, so the standing criteria
   below select a stable, computable fraction at every rung. *)
let scale_row u =
  let d = Attribute.defined and un = Attribute.undefined in
  [ (d "time", Value.Time (1_000_000 + u));
    (d "id", Value.Str (Printf.sprintf "U%d" u));
    (d "protocl", Value.Str (if u mod 3 = 0 then "TCP" else "UDP"));
    (d "tid", Value.Str (Printf.sprintf "T%07d" u));
    (un 1, Value.Int (u * 7 mod 100));
    (un 2, Value.Money (500 + (u * 131 mod 9000)));
    (un 3, Value.Str "sig")
  ]

let scale_criteria = {|protocl = "UDP" && C1 > 30|}

(* SCALE_SMOKE=1 shrinks the ladder to a seconds-long smoke run (CI's
   per-seed matrix); the full ladder backs the checked-in
   BENCH_scale.json and the threshold-0 drift gate. *)
let scale_smoke = Sys.getenv_opt "SCALE_SMOKE" = Some "1"
let scale_shards = if scale_smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ]

let scale_users =
  if scale_smoke then [ 200; 1_000 ] else [ 1_000; 10_000; 100_000 ]

let scale_repeats = 5

let exp_scale () =
  section
    "P17: sharded scale ladder — scatter-gather audits vs shard count and \
     population";
  Printf.printf "machine: ocaml %s, %d-bit, %s%s\n" Sys.ocaml_version
    Sys.word_size Sys.os_type
    (if scale_smoke then " (SMOKE ladder)" else "");
  let criteria = Auditor_engine.Text scale_criteria in
  let cells = ref [] in
  List.iter
    (fun shards ->
      (* One fleet per shard count, extended rung to rung: the 10^4
         ladder reuses the 10^3 ingest instead of re-submitting it. *)
      let fleet = Sharding.create ~seed:5 ~shards Fragmentation.paper_partition in
      let population = ref 0 in
      List.iter
        (fun users ->
          for u = !population + 1 to users do
            match
              Sharding.submit fleet ~origin:(Net.Node_id.User u)
                ~attributes:(scale_row u)
            with
            | Ok _ -> ()
            | Error e -> failwith (Printf.sprintf "scale: submit %d: %s" u e)
          done;
          population := users;
          let audit_once () =
            match Sharding.audit fleet ~auditor criteria with
            | Ok a -> a
            | Error e -> failwith ("scale: " ^ Audit_error.to_string e)
          in
          (* Explicit warmup: the first audit on a rung pays one-time
             setup (Montgomery contexts, per-shard key material); it is
             never measured and never counted. *)
          ignore (audit_once ());
          let result = audit_once () in
          let median =
            if !skip_timing then None
            else Some (median_ms ~repeats:scale_repeats audit_once)
          in
          cells := (shards, users, result, median) :: !cells)
        scale_users)
    scale_shards;
  (* Counters last, from a clean registry: the warmup/timing audits
     above never leak into BENCH_scale.json, so the emitted file is
     byte-stable with or without --skip-timing. *)
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  let rows =
    List.map
      (fun (s, u, (a : Sharding.audit), median) ->
        let merged = a.Sharding.merged in
        let cell name v =
          Obs.Metrics.incr ~by:v (Printf.sprintf "scale.s%d.u%d.%s" s u name)
        in
        cell "messages" merged.Auditor_engine.messages;
        cell "bytes" merged.Auditor_engine.bytes;
        cell "rounds" merged.Auditor_engine.rounds;
        cell "cross_shard_msgs" a.Sharding.cross_shard_msgs;
        cell "matches" merged.Auditor_engine.count;
        [ fi s; fi u; fi merged.Auditor_engine.messages;
          fi merged.Auditor_engine.rounds; fi a.Sharding.cross_shard_msgs;
          fi merged.Auditor_engine.count;
          (match median with
          | Some ms -> Printf.sprintf "%.2f ms" ms
          | None -> "(timing skipped)")
        ])
      (List.rev !cells)
  in
  print_table
    ~header:
      [ "shards"; "users"; "audit msgs"; "rounds"; "fabric msgs"; "matches";
        "median audit (of 5)"
      ]
    rows;
  print_endline
    "=> the audit's SMC traffic is per-shard-constant (every shard runs\n\
    \   the same fixed-size protocols over its own fragments), so total\n\
    \   messages grow linearly in S and not at all in the population;\n\
    \   the fabric adds exactly 2S scatter-gather messages, 0 at S=1."

(* ------------------------------------------------------------------ *)
(* P18: reactor pipeline ladder                                        *)
(* ------------------------------------------------------------------ *)

(* Deterministic synthetic population for the reactor ladder.  Every
   paper attribute plus the three extra undefined columns (C4/C5/C6,
   homed at P0/P1/P2 by the paper partition) carries a value, so both
   resource-disjoint cross-node comparison pairs — {P0,P3} via C1 vs C4
   and {P1,P2} via C2 vs C3 / tid vs id — are exercised, and the
   single-column predicates select hundreds of glsns: large enough that
   the ∩ₛ ring passes cross the domain pool's farming threshold. *)
let pipeline_row u =
  let d = Attribute.defined and un = Attribute.undefined in
  [ (d "time", Value.Time (2_000_000 + u));
    (d "id", Value.Str (Printf.sprintf "U%d" u));
    (d "protocl", Value.Str (if u mod 3 = 0 then "TCP" else "UDP"));
    (d "tid", Value.Str (Printf.sprintf "T%07d" u));
    (un 1, Value.Int (u * 7 mod 100));
    (un 2, Value.Money (500 + (u * 131 mod 9000)));
    (un 3, Value.Str "sig");
    (un 4, Value.Int (u * 13 mod 100));
    (un 5, Value.Int (u * 17 mod 100));
    (un 6, Value.Int (u * 19 mod 100))
  ]

(* The 8-criteria batch.  Four cross-node comparison clauses, two per
   disjoint resource pair ({P0,P3}: C1 > C4, C1 = C4; {P1,P2}: C2 = C3,
   tid != id), so at depth >= 2 the pipeline can always keep both pairs
   busy; every single-column clause appears in at least two queries, so
   the session's clause dedup stays in the P14 regime. *)
let pipeline_criteria =
  [ {|C1 > 30 && C4 < 50|};
    {|C5 < 50 && C6 < 50|};
    {|C1 > 30 && C5 < 50 && C2 = C3|};
    {|C4 < 50 && C1 > C4|};
    {|C6 < 50 && tid != id|};
    {|C1 > 30 && C1 = C4|};
    {|C4 < 50 && C5 < 50 && C6 < 50|};
    {|protocl = "UDP" && C1 > 30 && C4 < 50|}
  ]

(* PIPELINE_SMOKE=1 shrinks the population and the width ladder to a
   seconds-long smoke run; PIPELINE_DOMAINS=k pins the ladder to one
   pool width (CI's domains matrix runs k = 1, 2, 4 and relies on the
   in-experiment differential checks against the width-1 reference). *)
let pipeline_smoke = Sys.getenv_opt "PIPELINE_SMOKE" = Some "1"
let pipeline_rows = if pipeline_smoke then 160 else 800

let pipeline_widths =
  match Sys.getenv_opt "PIPELINE_DOMAINS" with
  | Some s -> [ int_of_string s ]
  | None -> if pipeline_smoke then [ 1; 2 ] else [ 1; 2; 4 ]

let pipeline_depths = [ 1; 4 ]
let pipeline_repeats = 3

let exp_pipeline () =
  (* Several same-population clusters live at once (reference, ladder
     cell, canonical): each holds ~6 odd moduli of key material. *)
  with_mont_capacity 12 @@ fun () ->
  section
    "P18: reactor pipeline ladder — domains x depth over the 8-criteria \
     batched session";
  Printf.printf "population: %d rows; host cores: %d%s\n" pipeline_rows
    (Domain.recommended_domain_count ())
    (if pipeline_smoke then " (SMOKE ladder)" else "");
  (* Pohlig–Hellman conjunction: unlike the default XOR pad, the ∩ₛ
     ring passes become modexp batches — the work the domain pool
     farms.  Params are generated once, before any cluster exists. *)
  let ph_params =
    Crypto.Pohlig_hellman.generate_params (Prng.create ~seed:71) ~bits:256
  in
  let conjunction rng = Crypto.Commutative.pohlig_hellman rng ph_params in
  let build ~domains ~depth () =
    let config =
      Net.Config.make ~seed:11 ~domains ~max_pipeline_depth:depth
        ~coalesce:true ()
    in
    let cluster =
      Cluster.create ~seed:31 ~net:(Net.Network.of_config config)
        Fragmentation.paper_partition
    in
    let ticket =
      Cluster.issue_ticket cluster ~id:"T" ~principal:(Net.Node_id.User 1)
        ~rights:[ Ticket.Read; Ticket.Write ] ~ttl:86400
    in
    for u = 1 to pipeline_rows do
      match
        Cluster.to_result
          (Cluster.submit cluster ~ticket ~origin:(Net.Node_id.User 1)
             ~attributes:(pipeline_row u))
      with
      | Ok _ -> ()
      | Error e -> failwith (Printf.sprintf "pipeline: submit %d: %s" u e)
    done;
    cluster
  in
  let session ?conjunction:(c = conjunction) cluster =
    match
      Audit_session.run_strings cluster ~auditor ~conjunction:c
        pipeline_criteria
    with
    | Ok s -> s
    | Error e -> failwith (Audit_error.to_string e)
  in
  let matching_of (s : Audit_session.summary) =
    List.map
      (fun e -> List.map Glsn.to_string e.Audit_session.matching)
      s.Audit_session.entries
  in
  (* Reference leg: width-1 pool (the ambient inline default), depth 1 —
     the sequential engine every other cell must reproduce exactly. *)
  let reference = session (build ~domains:1 ~depth:1 ()) in
  let ref_matching = matching_of reference in
  (* Scheme cross-check: the conjunction cipher may move wall-clock and
     the crypto op-mix, never the verdicts. *)
  let xor_summary =
    session
      ~conjunction:(fun rng ->
        Crypto.Commutative.xor_pad rng (Crypto.Xor_pad.params ~width_bits:256))
      (build ~domains:1 ~depth:1 ())
  in
  if matching_of xor_summary <> ref_matching then
    failwith "pipeline: XOR-pad and Pohlig-Hellman sessions diverge";
  subsection
    (Printf.sprintf
       "%d criteria, %d unique clauses (%d deduplicated), %d matches total"
       (List.length pipeline_criteria) reference.Audit_session.unique_clauses
       reference.Audit_session.dedup_clauses
       (List.fold_left
          (fun acc e -> acc + List.length e.Audit_session.matching)
          0 reference.Audit_session.entries));
  (* The ladder: every (domains, depth) cell must return byte-identical
     verdicts and identical §3 wire costs; only wall-clock and the
     virtual pipeline makespan may move. *)
  let cells = ref [] in
  List.iter
    (fun domains ->
      let pool = Domain_pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () ->
          Domain_pool.with_pool pool (fun () ->
              List.iter
                (fun depth ->
                  let cluster = build ~domains ~depth () in
                  let once () = session cluster in
                  (* First run doubles as warmup (Montgomery contexts,
                     key material) and as the differential check. *)
                  let s = once () in
                  if matching_of s <> ref_matching then
                    failwith
                      (Printf.sprintf
                         "pipeline: domains=%d depth=%d diverges from the \
                          sequential reference"
                         domains depth);
                  if
                    s.Audit_session.messages
                    <> reference.Audit_session.messages
                    || s.Audit_session.bytes <> reference.Audit_session.bytes
                    || s.Audit_session.rounds
                       <> reference.Audit_session.rounds
                  then
                    failwith
                      (Printf.sprintf
                         "pipeline: domains=%d depth=%d moved the section-3 \
                          wire cost"
                         domains depth);
                  let median =
                    if !skip_timing then None
                    else Some (median_ms ~repeats:pipeline_repeats once)
                  in
                  cells := (domains, depth, s, median) :: !cells)
                pipeline_depths)))
    pipeline_widths;
  let cells = List.rev !cells in
  let base_median =
    List.find_map
      (fun (d, p, _, m) -> if d = 1 && p = 1 then m else None)
      cells
  in
  print_table
    ~header:
      [ "domains"; "depth"; "virtual seq"; "virtual pipelined";
        "median wall (of 3)"; "wall speedup"
      ]
    (List.map
       (fun (domains, depth, (s : Audit_session.summary), median) ->
         let r = s.Audit_session.pipeline in
         [ fi domains; fi depth;
           Printf.sprintf "%.1f ms" r.Net.Runtime.Pipeline.sequential_ms;
           Printf.sprintf "%.1f ms" r.Net.Runtime.Pipeline.pipelined_ms;
           (match median with
           | Some ms -> Printf.sprintf "%.1f ms" ms
           | None -> "(timing skipped)");
           (match (median, base_median) with
           | Some ms, Some base when ms > 0.0 ->
             let speedup = base /. ms in
             Obs.Metrics.observe
               (Printf.sprintf "pipeline.wall.speedup.d%d_depth%d" domains
                  depth)
               speedup;
             Printf.sprintf "%.2fx" speedup
           | _ -> "-")
         ])
       cells);
  if Domain.recommended_domain_count () < List.fold_left max 1 pipeline_widths
  then
    print_endline
      "note: this host has fewer cores than the widest ladder cell — the\n\
       domain term cannot realize parallel wall-clock speedup here; the\n\
       deterministic virtual makespan below is the gating headline.";
  (* Counters last, from a clean registry: the canonical cell is
     domains=4, depth=4 with coalescing on.  The cluster is built
     before the reset (submission traffic never pollutes the emitted
     counters), and everything below is seeded, so BENCH_pipeline.json
     is byte-stable with or without --skip-timing and identical at
     every PIPELINE_DOMAINS matrix leg. *)
  let pool = Domain_pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Domain_pool.with_pool pool (fun () ->
          let canonical = build ~domains:4 ~depth:4 () in
          Obs.Metrics.reset ();
          Obs.Trace.reset ();
          let s = session canonical in
          if matching_of s <> ref_matching then
            failwith "pipeline: canonical cell diverges";
          let r = s.Audit_session.pipeline in
          let speedup =
            if r.Net.Runtime.Pipeline.pipelined_ms > 0.0 then
              r.Net.Runtime.Pipeline.sequential_ms
              /. r.Net.Runtime.Pipeline.pipelined_ms
            else 1.0
          in
          Printf.printf
            "virtual makespan, depth 4: %.1f ms sequential -> %.1f ms \
             pipelined (%.2fx, peak depth %d)\n"
            r.Net.Runtime.Pipeline.sequential_ms
            r.Net.Runtime.Pipeline.pipelined_ms speedup
            r.Net.Runtime.Pipeline.peak_depth;
          if speedup < 1.5 then
            failwith
              (Printf.sprintf
                 "pipeline: virtual speedup %.2fx below the 1.5x gate"
                 speedup);
          List.iter
            (fun (name, v) -> Obs.Metrics.incr ~by:v name)
            [ ("pipeline.criteria", List.length pipeline_criteria);
              ("pipeline.rows", pipeline_rows);
              ("pipeline.unique_clauses", s.Audit_session.unique_clauses);
              ("pipeline.dedup_clauses", s.Audit_session.dedup_clauses);
              ("pipeline.messages", s.Audit_session.messages);
              ("pipeline.bytes", s.Audit_session.bytes);
              ("pipeline.rounds", s.Audit_session.rounds);
              ( "pipeline.virtual.speedup_x100",
                int_of_float (Float.round (100.0 *. speedup)) )
            ];
          subsection "experiment counter totals (persisted to BENCH_pipeline.json)";
          print_table ~header:[ "counter"; "value" ]
            (List.map
               (fun name -> [ name; fi (Obs.Metrics.get name) ])
               [ "pipeline.virtual.speedup_x100"; "audit.pipeline.clauses";
                 "audit.pipeline.deps"; "audit.pipeline.depth.max";
                 "audit.pipeline.virtual_sequential_us";
                 "audit.pipeline.virtual_pipelined_us"; "net.msgs";
                 "net.rounds"; "net.frame.sends"; "net.frame.coalesced";
                 "pool.batches"; "pool.jobs"; "pool.inline";
                 "crypto.modexp"
               ])));
  print_endline
    "=> every reactor knob (pool width, pipeline depth, coalescing)\n\
    \   returns byte-identical verdicts at identical section-3 wire\n\
    \   cost; the dependency-scheduled pipeline overlaps the two\n\
    \   disjoint cross-node comparison pairs, and the domain pool\n\
    \   farms the Pohlig-Hellman ring passes that dominate wall-clock."

let experiments =
  [ ("tables", exp_tables);
    ("fig1", exp_fig1);
    ("fig2", exp_fig2);
    ("fig3", exp_fig3);
    ("fig4", exp_fig4);
    ("fig6", exp_fig6);
    ("fig7", exp_fig7);
    ("c_store", exp_c_store);
    ("c_auditing", exp_c_auditing);
    ("c_dla", exp_c_dla);
    ("cost_sum", exp_cost_sum);
    ("cost_intersection", exp_cost_intersection);
    ("cost_cipher", exp_cost_cipher);
    ("cost_integrity", exp_cost_integrity);
    ("cost_shamir", exp_cost_shamir);
    ("cost_threshold", exp_cost_threshold);
    ("cost_majority", exp_cost_majority);
    ("cost_correlation", exp_cost_correlation);
    ("exposure", exp_exposure);
    ("async_integrity", exp_async_integrity);
    ("shared_column", exp_shared_column);
    ("layout_search", exp_layout_search);
    ("millionaire", exp_millionaire);
    ("availability", exp_availability);
    ("modexp", exp_modexp);
    ("audit_batch", exp_audit_batch);
    ("byzantine", exp_byzantine);
    ("continuous", exp_continuous);
    ("scale", exp_scale);
    ("pipeline", exp_pipeline)
  ]

let () =
  Array.iteri
    (fun i arg ->
      match arg with
      | "--skip-timing" -> skip_timing := true
      | "--list" ->
        List.iter (fun (name, _) -> print_endline name) experiments;
        exit 0
      | "--only" when i + 1 < Array.length Sys.argv ->
        only := Some Sys.argv.(i + 1)
      | "--metrics-out" when i + 1 < Array.length Sys.argv ->
        metrics_out := Some Sys.argv.(i + 1)
      | _ -> ())
    Sys.argv;
  let to_run =
    match !only with
    | None -> experiments
    | Some id -> List.filter (fun (name, _) -> name = id) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment; available: %s\n"
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  List.iter
    (fun (name, fn) ->
      (* Per-experiment metrics: reset the global registry around each
         run so every BENCH_<id>.json holds that experiment's counters
         alone, comparable run-to-run (everything is seeded, so the
         files are byte-stable — the CI baseline diff relies on it). *)
      if !metrics_out <> None then begin
        Obs.Metrics.reset ();
        Obs.Trace.reset ()
      end;
      fn ();
      match !metrics_out with
      | None -> ()
      | Some dir ->
        let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
        let machine =
          (* Provenance only — diff_metrics compares counters, so these
             fields never gate CI; keep them toolchain-stable. *)
          [ ("ocaml", Sys.ocaml_version);
            ("word_size", string_of_int Sys.word_size);
            ("os_type", Sys.os_type)
          ]
        in
        Obs.Sink.write_file ~path
          (Obs.Sink.json_of ~experiment:name ~machine ());
        Printf.printf "[metrics] wrote %s\n" path)
    to_run;
  print_newline ()
